//! `mfd-sim` — a deterministic discrete-event simulator for **asynchronous**
//! CONGEST execution.
//!
//! The workspace now has three ways to run a distributed algorithm, one per
//! layer of realism:
//!
//! 1. **Metered** (`mfd-congest`): a leader-local computation charges rounds
//!    to a [`mfd_congest::RoundMeter`].
//! 2. **Executed** (`mfd-runtime`): a [`mfd_runtime::NodeProgram`] really
//!    exchanges messages, but every vertex moves in lockstep.
//! 3. **Simulated** (this crate): the *same unmodified* `NodeProgram` runs on
//!    an asynchronous network where each edge delays messages according to a
//!    pluggable [`LatencyModel`], behind an α-synchronizer that preserves the
//!    program's synchronous round semantics ([`simulator`] module docs).
//!
//! Everything is deterministic: latencies are pure functions of
//! `(seed, edge, round)`, events at equal times commute, and with
//! [`LatencyModel::Fixed`]`(1)` a simulation reproduces the synchronous
//! [`mfd_runtime::Executor`]'s final states bit for bit — the cross-engine
//! differential suites in `mfd-core` and the repo-level tests enforce this.
//! What latency models add is the *time axis*: [`SimExecution`] reports the
//! makespan, per-vertex completion times, per-edge congestion peaks and the
//! synchronizer's overhead next to the usual round/message accounting.
//!
//! # Worked example: one BFS wave, three networks
//!
//! A BFS-style flood takes `height + 1` protocol rounds no matter what the
//! network does — that is the algorithm's round complexity, and all three
//! runs below report the same `rounds` and `messages`. The *makespan* tells a
//! different story on each network:
//!
//! ```
//! use mfd_graph::generators;
//! use mfd_runtime::{Envelope, NodeCtx, NodeProgram, Outbox};
//! use mfd_sim::{LatencyModel, SimConfig, Simulator};
//!
//! /// Vertex 0 floods a token; everyone adopts its hop distance.
//! struct Flood;
//! impl NodeProgram for Flood {
//!     type State = Option<u64>;
//!     type Msg = u64;
//!     fn init(&self, ctx: &NodeCtx) -> Option<u64> {
//!         (ctx.id == 0).then_some(0)
//!     }
//!     fn round(
//!         &self,
//!         ctx: &NodeCtx,
//!         state: &mut Option<u64>,
//!         inbox: &[Envelope<u64>],
//!         out: &mut Outbox<'_, u64>,
//!     ) {
//!         if state.is_none() {
//!             if let Some(first) = inbox.first() {
//!                 *state = Some(first.msg + 1);
//!             }
//!         }
//!         if let Some(d) = *state {
//!             if ctx.round == d + 1 {
//!                 out.broadcast(d); // forward the wave exactly once
//!             }
//!         }
//!     }
//!     fn halted(&self, ctx: &NodeCtx, state: &Option<u64>) -> bool {
//!         state.is_some() && ctx.round > state.unwrap() || ctx.round > ctx.n as u64
//!     }
//! }
//!
//! let g = generators::path(6); // height 5: six rounds of protocol
//!
//! // Network 1: unit delays — the synchronous schedule, 1 tick per round.
//! let unit = Simulator::new(SimConfig::default()).run(&g, &Flood).unwrap();
//! assert_eq!(unit.rounds, 6);
//! assert_eq!(unit.makespan, 5); // round r fires at tick r - 1
//!
//! // Network 2: every link waits 3 ticks — same rounds, 3× the wall clock.
//! let slow = Simulator::new(SimConfig::default().with_latency(LatencyModel::Fixed(3)))
//!     .run(&g, &Flood)
//!     .unwrap();
//! assert_eq!(slow.rounds, 6);
//! assert_eq!(slow.makespan, 15);
//! assert_eq!(slow.states, unit.states); // latency never changes the answer
//!
//! // Network 3: jittery links — rounds still identical, makespan in between,
//! // and bit-for-bit reproducible for the same seed.
//! let jitter = SimConfig::default().with_latency(LatencyModel::Uniform { lo: 1, hi: 3 });
//! let a = Simulator::new(jitter.clone()).run(&g, &Flood).unwrap();
//! let b = Simulator::new(jitter).run(&g, &Flood).unwrap();
//! assert_eq!(a.rounds, 6);
//! assert_eq!(a.states, unit.states);
//! assert_eq!(a.makespan, b.makespan);
//! assert!((5..=15).contains(&a.makespan));
//!
//! // The α-synchronizer's price is visible, not hidden: pure pulses are the
//! // packets that carried no program message.
//! assert!(a.stats.pure_pulses > 0);
//! println!("overhead: {:.0}%", a.stats.overhead_ratio() * 100.0);
//! ```
//!
//! For heterogeneous topologies, [`LatencyModel::PerEdge`] reads delays from
//! an [`mfd_graph::WeightedGraph`] — e.g. reuse a decomposition's quotient
//! graph as a link-latency map — and [`LatencyModel::HeavyTail`] models
//! straggler links with a truncated Pareto distribution.

//! # Fault injection
//!
//! The engine's delivery path is also the workspace's fault-injection
//! surface: [`Simulator::run_with_faults`] consults a [`FaultHook`] once per
//! program message (drop / duplicate / slip to a later round) and supports
//! crash-stop vertices with a failure-detector delay — see the [`faults`]
//! module docs for the exact semantics and determinism contract. Fault
//! *models* (i.i.d. and Gilbert–Elliott loss, chaos mixes, crash schedules)
//! and the reliable-delivery adapter that repairs a lossy network live one
//! layer up, in `mfd-faults`.
//!
//! A guided tour of this crate's role in the workspace lives in
//! `docs/ARCHITECTURE.md` (section "mfd-sim").

pub mod faults;
pub mod latency;
pub mod report;
pub mod simulator;

pub use faults::{FaultHook, FaultOutcome, FaultedRun, MessageFate, NoFaults};
pub use latency::LatencyModel;
pub use report::{SimExecution, SimStats};
pub use simulator::{
    run_both, PacketCheckpoint, SimCheckpoint, SimConfig, Simulator, TieBreak, VertexCheckpoint,
};
