//! Gather-under-faults experiment harness.
//!
//! Three questions, answered with measurements rather than assumptions:
//!
//! 1. **Degradation** — what fraction of the §2 gather traffic still reaches
//!    the leader when the network drops, duplicates and reorders messages
//!    ([`gather_raw`])? Protocols with in-band control (the tree pipeline's
//!    done flags, the balancer's stop wave) usually *wedge* — they starve
//!    waiting for a lost control message, and the run reports how far they
//!    got.
//! 2. **Recovery** — wrap the same unmodified program in
//!    [`Reliable`] and the loss-free delivery (and therefore the exact
//!    loss-free delivered set) comes back, at a measured retransmit/ack
//!    overhead ([`gather_recovered`]).
//! 3. **Crash robustness** — crash-stop the gather leader, let the
//!    survivors re-elect ([`ReElectionProgram`]) and re-gather on the
//!    surviving cluster ([`crash_and_regather`]).

use mfd_graph::Graph;
use mfd_routing::programs::{ExecutedGather, GatherProgram, TreeGatherProgram};
use mfd_runtime::{Executor, ExecutorConfig, RuntimeError};
use mfd_sim::{SimConfig, Simulator};

use crate::election::ReElectionProgram;
use crate::models::FaultModel;
use crate::reliable::{Reliable, ReliableStats};

/// Outcome of one gather run under a fault model.
///
/// The report's `delivered_fraction` is replaced by the **leader-honest**
/// fraction ([`GatherProgram::leader_received`]): under faults, source-side
/// bookkeeping can look complete while the leader never heard the messages,
/// and it is the leader's receipts the experiments gate on.
#[derive(Debug, Clone)]
pub struct FaultImpact {
    /// The gather report extracted from the (possibly partial) final states.
    pub gather: ExecutedGather,
    /// Simulated makespan at completion or starvation.
    pub makespan: u64,
    /// Whether the run starved against its round budget.
    pub wedged: bool,
    /// Program messages the fault model destroyed.
    pub lost_messages: u64,
    /// Transport statistics, when the run went through [`Reliable`].
    pub reliable: Option<ReliableStats>,
}

/// Runs a gather program **raw** under `model`: losses reach the program.
///
/// # Errors
///
/// Propagates engine errors other than starvation (which is reported as
/// [`FaultImpact::wedged`] with partial results).
pub fn gather_raw<P: GatherProgram>(
    g: &Graph,
    program: &P,
    config: &SimConfig,
    model: &FaultModel,
) -> Result<FaultImpact, RuntimeError> {
    let run = Simulator::new(config.clone()).run_with_faults(g, program, model)?;
    let mut gather = program.executed_report(&run.run.states, run.run.rounds, run.run.messages);
    gather.delivered_fraction = leader_fraction(program, &run.run.states);
    Ok(FaultImpact {
        gather,
        makespan: run.run.makespan,
        wedged: run.outcome.is_wedged(),
        lost_messages: run.run.stats.lost_messages,
        reliable: None,
    })
}

/// The leader-honest delivered fraction of a (possibly partial) run.
fn leader_fraction<P: GatherProgram>(program: &P, states: &[P::State]) -> f64 {
    let total = program.total_messages();
    if total == 0 {
        1.0
    } else {
        program.leader_received(states) as f64 / total as f64
    }
}

/// Runs a gather program behind the [`Reliable`] adapter under `model`: the
/// program sees loss-free delivery; the report's rounds/messages are the
/// *transport's* (physical rounds, frames), so the recovery overhead is
/// visible next to the raw run.
///
/// # Errors
///
/// Propagates engine errors other than starvation.
pub fn gather_recovered<P>(
    g: &Graph,
    reliable: &Reliable<P>,
    config: &SimConfig,
    model: &FaultModel,
) -> Result<FaultImpact, RuntimeError>
where
    P: GatherProgram,
    P::State: Clone,
{
    let run = Simulator::new(config.clone()).run_with_faults(g, reliable, model)?;
    let mut gather = reliable.executed_report(&run.run.states, run.run.rounds, run.run.messages);
    gather.delivered_fraction = leader_fraction(reliable, &run.run.states);
    Ok(FaultImpact {
        gather,
        makespan: run.run.makespan,
        wedged: run.outcome.is_wedged(),
        lost_messages: run.run.stats.lost_messages,
        reliable: Some(Reliable::<P>::stats(&run.run.states)),
    })
}

/// Outcome of a crash → re-election → re-gather experiment.
#[derive(Debug, Clone)]
pub struct CrashRegather {
    /// Vertices the schedule crashed.
    pub crashed: Vec<usize>,
    /// Surviving vertices, ascending.
    pub survivors: Vec<usize>,
    /// Whether every survivor ended on the same post-crash belief.
    pub agreement: bool,
    /// The re-elected leader (survivor consensus; meaningful when
    /// `agreement` holds).
    pub elected: usize,
    /// Rounds the election protocol ran.
    pub election_rounds: u64,
    /// Heartbeat messages the election spent.
    pub election_messages: u64,
    /// The tree gather re-run on the surviving cluster, addressed to the
    /// re-elected leader.
    pub regather: ExecutedGather,
}

/// Crashes `initial_leader` at `crash_round`, lets the survivors re-elect a
/// leader, then re-runs a tree gather on the surviving induced subgraph
/// towards the winner.
///
/// # Errors
///
/// Propagates engine errors from either phase.
///
/// # Panics
///
/// Panics if the crash leaves no survivors.
pub fn crash_and_regather(
    g: &Graph,
    initial_leader: usize,
    crash_round: u64,
    detection_delay: u64,
    sim_config: &SimConfig,
    exec_config: &ExecutorConfig,
) -> Result<CrashRegather, RuntimeError> {
    let program = ReElectionProgram::new(initial_leader, g.n(), crash_round);
    let model = FaultModel::none()
        .with_crash(initial_leader, crash_round)
        .with_detection_delay(detection_delay);
    let run = Simulator::new(sim_config.clone()).run_with_faults(g, &program, &model)?;
    let survivors = run.survivors();
    assert!(!survivors.is_empty(), "crash schedule killed everyone");
    let crashed: Vec<usize> = (0..g.n()).filter(|&v| run.crashed[v]).collect();

    let beliefs: Vec<u64> = survivors
        .iter()
        .map(|&v| run.run.states[v].belief)
        .collect();
    let candidate = run.run.states[survivors[0]].candidate();
    let agreement =
        beliefs.windows(2).all(|w| w[0] == w[1]) && survivors.binary_search(&candidate).is_ok();
    // Without agreement (a disconnected survivor component can keep
    // believing in the dead leader forever — it never hears the new epoch),
    // the re-gather still runs, addressed to the largest survivor, and the
    // caller reads `agreement: false` for the verdict.
    let elected = if survivors.binary_search(&candidate).is_ok() {
        candidate
    } else {
        *survivors.last().expect("survivors are non-empty")
    };

    // Phase 2: gather on the surviving cluster, towards the new leader. The
    // induced subgraph renumbers vertices; map the winner through it.
    let (sub, _old_of_new) = g.induced_subgraph(&survivors);
    let sub_leader = survivors
        .binary_search(&elected)
        .expect("elected leader is a survivor by construction");
    let tree = TreeGatherProgram::new(&sub, sub_leader);
    let exec = Executor::new(exec_config.clone()).run(&sub, &tree)?;
    let regather = tree.executed_report(&exec.states, exec.rounds, exec.messages);

    Ok(CrashRegather {
        crashed,
        survivors,
        agreement,
        elected,
        election_rounds: run.run.rounds,
        election_messages: run.run.messages,
        regather,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;

    #[test]
    fn raw_tree_gather_degrades_under_loss_and_recovers_behind_the_adapter() {
        let g = generators::triangulated_grid(6, 6);
        let leader = 0;
        let program = TreeGatherProgram::new(&g, leader);
        let config = SimConfig::default();
        let model = FaultModel::iid_loss(0.15);

        let clean = gather_raw(&g, &program, &config, &FaultModel::none()).unwrap();
        assert!(!clean.wedged);
        assert!((clean.gather.delivered_fraction - 1.0).abs() < 1e-12);

        let raw = gather_raw(&g, &program, &config, &model).unwrap();
        assert!(raw.lost_messages > 0);
        // The tree protocol's control plane starves under loss: either the
        // run wedges or some deliveries are gone.
        assert!(raw.wedged || raw.gather.delivered_fraction < 1.0);

        let recovered =
            gather_recovered(&g, &Reliable::new(program.clone()), &config, &model).unwrap();
        assert!(!recovered.wedged);
        assert!((recovered.gather.delivered_fraction - 1.0).abs() < 1e-12);
        let stats = recovered.reliable.unwrap();
        assert!(stats.retransmitted > 0);
        // The recovery is paid for in frames, and the report says how much.
        assert!(recovered.gather.messages > clean.gather.messages);
    }

    #[test]
    fn an_all_duplicating_network_cannot_inflate_the_leader_receipts() {
        // Every message is delivered twice; sequence numbers must reject the
        // copies, so the leader's receipt count equals the loss-free total
        // *exactly* — not merely clamped to it.
        use mfd_sim::{FaultHook, MessageFate};
        struct DupAll;
        impl FaultHook for DupAll {
            fn message_fate(
                &self,
                _seed: u64,
                _src: usize,
                _dst: usize,
                _round: u64,
                _index: usize,
            ) -> MessageFate {
                MessageFate::Duplicate { slip: 1 }
            }
        }
        let g = generators::triangulated_grid(5, 5);
        let program = TreeGatherProgram::new(&g, 0);
        let sim = Simulator::new(SimConfig::default());
        let dup = sim.run_with_faults(&g, &program, &DupAll).unwrap();
        assert!(!dup.outcome.is_wedged());
        assert_eq!(
            program.leader_received(&dup.run.states),
            program.total_messages() as u64
        );
        assert_eq!(
            dup.run.stats.duplicated_messages, dup.run.messages,
            "every message should have been duplicated"
        );
    }

    #[test]
    fn disconnected_survivors_report_disagreement_instead_of_panicking() {
        // The far component never hears of the crash: its survivors keep
        // believing in the dead leader, so there is no consensus — the
        // experiment must say so, not die on an unmappable winner.
        let g = generators::path(4).disjoint_union(&generators::path(3));
        let out = crash_and_regather(
            &g,
            0, // leader in the first component
            3,
            1,
            &SimConfig::default(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(out.crashed, vec![0]);
        assert!(!out.agreement, "disconnected survivors cannot agree");
        // The fallback re-gather is still addressed to a real survivor.
        assert!(out.survivors.contains(&out.elected));
    }

    #[test]
    fn crashing_the_leader_elects_the_max_survivor_and_regathers() {
        let g = generators::triangulated_grid(5, 5);
        let leader = 12; // center-ish
        let out = crash_and_regather(
            &g,
            leader,
            4,
            2,
            &SimConfig::default(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(out.crashed, vec![leader]);
        assert_eq!(out.survivors.len(), g.n() - 1);
        assert!(out.agreement, "survivors disagree on the new leader");
        assert_eq!(out.elected, g.n() - 1, "max-id survivor should win");
        // The surviving grid minus an interior vertex stays connected, so
        // the re-gather delivers everything.
        assert!((out.regather.delivered_fraction - 1.0).abs() < 1e-12);
        assert!(out.regather.rounds > 0);
    }
}
