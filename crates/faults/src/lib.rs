//! `mfd-faults` — fault injection and recovery for the CONGEST engines.
//!
//! The workspace's execution story so far assumes a perfect network: the
//! synchronous executor by construction, the `mfd-sim` event engine by
//! delivering every packet. This crate opens the scenario axis real systems
//! live on — **what if the network lies?** — in three layers:
//!
//! 1. **Fault models** ([`models`]): deterministic, seed-keyed
//!    implementations of [`mfd_sim::FaultHook`] covering i.i.d. and
//!    Gilbert–Elliott burst message loss, duplication, reordering beyond
//!    latency jitter (round slippage), and crash-stop vertices with a crash
//!    schedule and a failure-detector delay. Faults are sampled through the
//!    same splitmix64 `(seed, edge, round)` discipline as everything else,
//!    so faulty runs are bit-for-bit reproducible — and at rate zero are
//!    *identical* to clean ones (enforced by the zero-fault identity
//!    suites).
//!
//! 2. **Recovery** ([`reliable`]): [`Reliable<P>`] wraps any unmodified
//!    [`mfd_runtime::NodeProgram`] with per-edge sequence numbers,
//!    cumulative acks and timeout retransmission, piggybacked on the
//!    α-synchronizer pulses — a lossy network becomes reliable again, the
//!    wrapped program's trajectory is exactly its loss-free one, and the
//!    retransmit/ack overhead is reported next to the usual round/message
//!    accounting.
//!
//! 3. **Experiments** ([`experiments`], [`election`]): the §2 gather
//!    strategies measured raw vs. recovered under each fault model
//!    (delivered-fraction degradation, wedge verdicts, recovery overhead),
//!    and crash-stop runs where the surviving cluster re-elects a gather
//!    leader by heartbeat epochs and re-gathers without the crashed one.
//!
//! **Fault models vs. the adapter.** A fault model *attacks* delivery below
//! the program (drop/duplicate/slip are invisible to the sender; crashes
//! silence a vertex); the adapter *defends* above it (every message is
//! numbered, acknowledged and retransmitted until delivered). They compose:
//! the acceptance experiments run `Reliable<P>` under the very models that
//! break raw `P`, and verify the delivered set comes back exactly.
//!
//! A guided tour of this crate's role in the workspace lives in
//! `docs/ARCHITECTURE.md` (section "mfd-faults"); the stateless fault
//! fates are part of the contract in `docs/DETERMINISM.md`.

pub mod election;
pub mod experiments;
pub mod models;
pub mod reliable;

pub use election::{ElectionState, ReElectionProgram};
pub use experiments::{
    crash_and_regather, gather_raw, gather_recovered, CrashRegather, FaultImpact,
};
pub use models::{FaultModel, LossModel};
pub use reliable::{
    EdgeRxParts, EdgeTxParts, Frame, Reliable, ReliableParts, ReliableState, ReliableStats,
};
