//! Deterministic fault models for the event engine.
//!
//! A [`FaultModel`] bundles the four fault axes the delivery hook supports —
//! message loss ([`LossModel`]), duplication, reordering-by-slippage and
//! crash-stop vertices — into one [`mfd_sim::FaultHook`] implementation. All
//! randomness flows through the workspace's splitmix64 discipline, keyed on
//! `(seed, edge, round, message index)` through dedicated stream salts, so:
//!
//! * faulty runs are bit-for-bit reproducible and tie-break independent
//!   (fates are pure functions of the run configuration, never of event
//!   scheduling);
//! * fault randomness never perturbs program or latency randomness — a model
//!   with all rates at zero yields a simulation *identical* to the clean one,
//!   which the zero-fault identity suites pin down.
//!
//! The Gilbert–Elliott burst model is the one stateful channel: each edge
//! direction carries a two-state (good/bad) Markov chain stepped once per
//! round. The chain is itself a pure function of `(seed, edge, round)` —
//! the implementation memoizes each edge's state sequence internally, so
//! query order cannot matter.

use std::cell::RefCell;
use std::collections::HashMap;

use mfd_graph::properties::splitmix64;
use mfd_runtime::NodeRng;
use mfd_sim::{FaultHook, MessageFate};

/// Stream salt separating per-message fault randomness from program and
/// latency randomness.
const FAULT_STREAM: u64 = 0x6661_756c_7473_0a00;
/// Stream salt for the Gilbert–Elliott per-edge channel chains.
const BURST_STREAM: u64 = 0x6275_7273_7479_0a00;

/// The per-message loss process of a [`FaultModel`].
#[derive(Debug, Clone, Default)]
pub enum LossModel {
    /// No losses.
    #[default]
    None,
    /// Every message is lost independently with probability `p`.
    Iid {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott burst loss: each edge direction is a two-state
    /// Markov channel stepped once per round; messages are lost with the
    /// current state's loss probability. Captures the bursty outages (a
    /// flapping link, a congested queue) that i.i.d. loss cannot.
    GilbertElliott {
        /// Per-round probability of a good edge turning bad.
        p_enter_bad: f64,
        /// Per-round probability of a bad edge recovering.
        p_exit_bad: f64,
        /// Loss probability while the edge is good.
        loss_good: f64,
        /// Loss probability while the edge is bad.
        loss_bad: f64,
    },
}

/// A deterministic, seed-keyed fault model: loss, duplication, reordering
/// and crash-stop vertices, pluggable into
/// [`mfd_sim::Simulator::run_with_faults`].
///
/// [`FaultModel::default`] (= [`FaultModel::none`]) injects nothing and is
/// bit-for-bit identical to a clean simulation.
#[derive(Debug, Default)]
pub struct FaultModel {
    /// The loss process.
    pub loss: LossModel,
    /// Probability that a delivered message is also duplicated (the copy
    /// arrives 1..=`max_slip` rounds late).
    pub duplicate_p: f64,
    /// Probability that a message slips 1..=`max_slip` rounds — reordering
    /// beyond latency jitter, since younger same-edge traffic overtakes it.
    pub slip_p: f64,
    /// Largest slip, in rounds (clamped to ≥ 1 whenever a slip fires).
    pub max_slip: u64,
    /// Crash schedule: `(vertex, round)` pairs; the vertex executes local
    /// rounds `1..round` and then crash-stops silently.
    pub crashes: Vec<(usize, u64)>,
    /// Ticks until neighbors' failure detectors notice a crash.
    pub detection_delay: u64,
    /// Memoized Gilbert–Elliott chains: per `(seed, src, dst)`, the
    /// bad-state flag for rounds `1..` (single-threaded interior
    /// mutability; contents are a pure function of the key, and keying by
    /// seed keeps a model reused across differently-seeded runs honest).
    chains: RefCell<HashMap<(u64, usize, usize), Vec<bool>>>,
}

impl Clone for FaultModel {
    fn clone(&self) -> Self {
        FaultModel {
            loss: self.loss.clone(),
            duplicate_p: self.duplicate_p,
            slip_p: self.slip_p,
            max_slip: self.max_slip,
            crashes: self.crashes.clone(),
            detection_delay: self.detection_delay,
            // The memo is pure derived state; a clone re-derives it.
            chains: RefCell::new(HashMap::new()),
        }
    }
}

impl FaultModel {
    /// The identity model: nothing is ever lost, duplicated, slipped or
    /// crashed.
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// I.i.d. message loss with probability `p`.
    pub fn iid_loss(p: f64) -> Self {
        FaultModel {
            loss: LossModel::Iid { p },
            ..FaultModel::default()
        }
    }

    /// Gilbert–Elliott burst loss (see [`LossModel::GilbertElliott`]).
    pub fn burst_loss(p_enter_bad: f64, p_exit_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        FaultModel {
            loss: LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            },
            ..FaultModel::default()
        }
    }

    /// A mixed model: i.i.d. loss plus duplication and slippage.
    pub fn chaos(loss_p: f64, duplicate_p: f64, slip_p: f64, max_slip: u64) -> Self {
        FaultModel {
            loss: LossModel::Iid { p: loss_p },
            duplicate_p,
            slip_p,
            max_slip,
            ..FaultModel::default()
        }
    }

    /// Adds a crash: `vertex` executes local rounds `1..round`, then dies.
    pub fn with_crash(mut self, vertex: usize, round: u64) -> Self {
        self.crashes.push((vertex, round));
        self
    }

    /// Sets the failure-detector delay, in ticks.
    pub fn with_detection_delay(mut self, ticks: u64) -> Self {
        self.detection_delay = ticks;
        self
    }

    /// Whether the edge `src → dst` is in the bad state while `src` executes
    /// `round` (Gilbert–Elliott only; `false` otherwise).
    fn bad_state(&self, seed: u64, src: usize, dst: usize, round: u64) -> bool {
        let LossModel::GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            ..
        } = self.loss
        else {
            return false;
        };
        let mut chains = self.chains.borrow_mut();
        let chain = chains.entry((seed, src, dst)).or_default();
        // Extend the chain deterministically: one keyed draw per round,
        // starting from the good state at round 1.
        while chain.len() < round as usize {
            let prev = chain.last().copied().unwrap_or(false);
            let r = chain.len() as u64 + 1;
            let mut rng = stream_rng(BURST_STREAM, seed, src, dst, r, 0);
            let u = unit(&mut rng);
            chain.push(if prev {
                u >= p_exit_bad
            } else {
                u < p_enter_bad
            });
        }
        chain[round as usize - 1]
    }
}

impl FaultHook for FaultModel {
    fn message_fate(
        &self,
        seed: u64,
        src: usize,
        dst: usize,
        round: u64,
        index: usize,
    ) -> MessageFate {
        let mut rng = stream_rng(FAULT_STREAM, seed, src, dst, round, index);
        let loss_p = match &self.loss {
            LossModel::None => 0.0,
            LossModel::Iid { p } => *p,
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                ..
            } => {
                if self.bad_state(seed, src, dst, round) {
                    *loss_bad
                } else {
                    *loss_good
                }
            }
        };
        if unit(&mut rng) < loss_p {
            return MessageFate::Drop;
        }
        if unit(&mut rng) < self.slip_p {
            return MessageFate::Slip {
                slip: 1 + rng.below(self.max_slip.max(1)),
            };
        }
        if unit(&mut rng) < self.duplicate_p {
            return MessageFate::Duplicate {
                slip: 1 + rng.below(self.max_slip.max(1)),
            };
        }
        MessageFate::Deliver
    }

    fn crash_round(&self, vertex: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|&&(v, _)| v == vertex)
            .map(|&(_, r)| r)
            .min()
    }

    fn detection_delay(&self) -> u64 {
        self.detection_delay.max(1)
    }
}

/// The deterministic per-(stream, edge, round, index) random chain.
fn stream_rng(salt: u64, seed: u64, src: usize, dst: usize, round: u64, index: usize) -> NodeRng {
    let mut s = splitmix64(seed ^ salt);
    s = splitmix64(s ^ src as u64);
    s = splitmix64(s ^ dst as u64);
    s = splitmix64(s ^ round);
    s = splitmix64(s ^ index as u64);
    NodeRng::from_seed(s)
}

/// A uniform draw in `[0, 1)` (53 mantissa bits).
fn unit(rng: &mut NodeRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_models_always_deliver() {
        for model in [
            FaultModel::none(),
            FaultModel::iid_loss(0.0),
            FaultModel::burst_loss(0.1, 0.3, 0.0, 0.0),
            FaultModel::chaos(0.0, 0.0, 0.0, 4),
        ] {
            for round in 1..200 {
                for index in 0..3 {
                    assert_eq!(
                        model.message_fate(0xFEED, 0, 1, round, index),
                        MessageFate::Deliver
                    );
                }
            }
        }
    }

    #[test]
    fn fates_are_pure_functions_of_the_key() {
        let a = FaultModel::chaos(0.2, 0.1, 0.1, 3);
        let b = a.clone();
        let mut seen_drop = false;
        let mut seen_other = false;
        for round in 1..400 {
            let fa = a.message_fate(7, 2, 3, round, 0);
            assert_eq!(fa, b.message_fate(7, 2, 3, round, 0));
            // Query order must not matter either (fresh model, same key).
            let c = FaultModel::chaos(0.2, 0.1, 0.1, 3);
            assert_eq!(fa, c.message_fate(7, 2, 3, round, 0));
            seen_drop |= fa == MessageFate::Drop;
            seen_other |= fa != MessageFate::Drop;
        }
        assert!(seen_drop && seen_other);
    }

    #[test]
    fn gilbert_elliott_chains_are_query_order_independent_and_bursty() {
        let loss = |m: &FaultModel, round| m.message_fate(42, 0, 1, round, 0) == MessageFate::Drop;
        let forward = FaultModel::burst_loss(0.05, 0.25, 0.0, 1.0);
        let fwd: Vec<bool> = (1..1000).map(|r| loss(&forward, r)).collect();
        let backward = FaultModel::burst_loss(0.05, 0.25, 0.0, 1.0);
        let bwd: Vec<bool> = (1..1000).rev().map(|r| loss(&backward, r)).collect();
        let mut rev = bwd.clone();
        rev.reverse();
        assert_eq!(fwd, rev);
        // Bursts: with loss_bad = 1 and loss_good = 0, losses come in runs
        // whose mean length (1/p_exit ≈ 4) exceeds the i.i.d. expectation.
        let losses = fwd.iter().filter(|&&l| l).count();
        let runs = fwd.windows(2).filter(|w| w[1] && !w[0]).count().max(1);
        assert!(losses > 0, "bad state never entered in 1000 rounds");
        assert!(
            losses as f64 / runs as f64 > 2.0,
            "losses are not bursty: {losses} losses in {runs} runs"
        );
    }

    #[test]
    fn gilbert_elliott_model_reuse_across_seeds_matches_fresh_models() {
        // A model instance queried under seed A must serve seed B exactly
        // what a fresh instance would — the chain memo is keyed by seed.
        let reused = FaultModel::burst_loss(0.1, 0.3, 0.0, 1.0);
        let a: Vec<MessageFate> = (1..200)
            .map(|r| reused.message_fate(1, 0, 1, r, 0))
            .collect();
        let b: Vec<MessageFate> = (1..200)
            .map(|r| reused.message_fate(2, 0, 1, r, 0))
            .collect();
        let fresh = FaultModel::burst_loss(0.1, 0.3, 0.0, 1.0);
        let b_fresh: Vec<MessageFate> = (1..200)
            .map(|r| fresh.message_fate(2, 0, 1, r, 0))
            .collect();
        assert_eq!(b, b_fresh, "reused model served a stale chain");
        assert_ne!(a, b, "different seeds should give different chains");
    }

    #[test]
    fn crash_schedule_takes_the_earliest_round() {
        let m = FaultModel::none().with_crash(3, 10).with_crash(3, 5);
        assert_eq!(m.crash_round(3), Some(5));
        assert_eq!(m.crash_round(4), None);
        assert_eq!(m.detection_delay(), 1); // clamped
        assert_eq!(m.with_detection_delay(7).detection_delay(), 7);
    }

    #[test]
    fn observed_loss_rate_tracks_the_configured_probability() {
        let m = FaultModel::iid_loss(0.3);
        let n = 20_000;
        let mut drops = 0;
        for round in 1..=n {
            if m.message_fate(1, 0, 1, round, 0) == MessageFate::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
    }
}
