//! Crash-robust leader re-election by heartbeat epochs.
//!
//! The gather programs all assume a designated leader; a crash-stop fault
//! can kill it. [`ReElectionProgram`] is the recovery protocol the
//! crash experiments run on the surviving cluster:
//!
//! * Every vertex broadcasts a heartbeat every round carrying its current
//!   **belief**, an `(epoch, candidate)` pair packed into one CONGEST word.
//!   All beliefs start at `(0, initial_leader)`.
//! * Because everyone heartbeats every round, silence is a verdict — but a
//!   *tuned* one: a neighbor is declared dead only after
//!   [`ReElectionProgram::missed_threshold`] **consecutive** missing
//!   heartbeats (default 3). One missing heartbeat reads as loss, `k` in a
//!   row as a crash; under message-loss rate `p` a false verdict needs `p^k`
//!   per edge per window, which is what lets the crash experiments compose
//!   with the loss models instead of assuming reliable links.
//! * A vertex that detects the death of its *believed leader* opens a new
//!   epoch: belief becomes `(epoch + 1, own id)`. Beliefs merge by
//!   lexicographic maximum, and any vertex holding a bumped epoch enrolls
//!   itself (`candidate = max(candidate, own id)`) — so the new epoch floods
//!   the surviving component and converges to the **largest surviving id**,
//!   while the dead leader, unable to speak, can never re-enter. A belief
//!   naming a neighbor the receiver has personally seen die is not adopted;
//!   it is answered with the next epoch.
//! * The protocol runs a fixed horizon of rounds (diameter + detection
//!   slack) and halts; the run is wedge-free by construction since every
//!   vertex broadcasts unconditionally.
//!
//! With `missed_threshold = 1` the program degenerates to the original
//! loss-intolerant detector; at the default of 3 it runs correctly under
//! moderate loss (tested), at the price of `k − 1` extra rounds of
//! detection latency folded into the horizon.

use mfd_runtime::{Envelope, NodeCtx, NodeProgram, Outbox};

/// Packs `(epoch, candidate)` into one comparable word.
fn pack(epoch: u64, candidate: usize) -> u64 {
    (epoch << 32) | candidate as u64
}

/// Unpacks a belief word into `(epoch, candidate)`.
pub fn unpack(belief: u64) -> (u64, usize) {
    (belief >> 32, (belief & 0xFFFF_FFFF) as usize)
}

/// Per-vertex state of [`ReElectionProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElectionState {
    /// Current `(epoch, candidate)` belief, packed ([`unpack`]).
    pub belief: u64,
    /// Neighbors this vertex has personally seen die (k missed heartbeats).
    pub dead: Vec<usize>,
    /// Consecutive missed heartbeats per neighbor (in `ctx.neighbors`
    /// order); reset by any received heartbeat.
    missed: Vec<u32>,
}

impl ElectionState {
    /// The currently believed leader.
    pub fn candidate(&self) -> usize {
        unpack(self.belief).1
    }

    /// The election epoch of the belief (0 = the initial leader).
    pub fn epoch(&self) -> u64 {
        unpack(self.belief).0
    }
}

/// Heartbeat-epoch leader re-election (module docs), run for a fixed round
/// horizon under a crash schedule.
#[derive(Debug, Clone)]
pub struct ReElectionProgram {
    /// The epoch-0 leader everyone starts believing in.
    pub initial_leader: usize,
    /// Rounds to run before halting (cover crash round + detection delay +
    /// missed-heartbeat window + surviving diameter, with slack).
    pub horizon: u64,
    /// Consecutive missing heartbeats before a neighbor is declared dead
    /// (≥ 1; the default 3 tolerates loss bursts of length 2).
    pub missed_threshold: u32,
}

/// Default missed-heartbeat window: silence must persist for three rounds.
pub const DEFAULT_MISSED_THRESHOLD: u32 = 3;

impl ReElectionProgram {
    /// Builds the protocol with the default detector and a horizon derived
    /// from the cluster size: `crash_round + n + 16 + threshold` covers
    /// detection plus any flood.
    pub fn new(initial_leader: usize, n: usize, crash_round: u64) -> Self {
        ReElectionProgram {
            initial_leader,
            horizon: crash_round + n as u64 + 16 + DEFAULT_MISSED_THRESHOLD as u64,
            missed_threshold: DEFAULT_MISSED_THRESHOLD,
        }
    }

    /// Sets the missed-heartbeat threshold (clamped ≥ 1), adjusting the
    /// horizon by the detection-latency difference.
    pub fn with_missed_threshold(mut self, k: u32) -> Self {
        let k = k.max(1);
        self.horizon = (self.horizon + k as u64).saturating_sub(self.missed_threshold as u64);
        self.missed_threshold = k;
        self
    }
}

impl NodeProgram for ReElectionProgram {
    type State = ElectionState;
    type Msg = u64;

    fn init(&self, ctx: &NodeCtx) -> ElectionState {
        ElectionState {
            belief: pack(0, self.initial_leader),
            dead: Vec::new(),
            missed: vec![0; ctx.degree()],
        }
    }

    fn round(
        &self,
        ctx: &NodeCtx,
        state: &mut ElectionState,
        inbox: &[Envelope<u64>],
        out: &mut Outbox<'_, u64>,
    ) {
        // Merge incoming beliefs; beliefs naming a neighbor this vertex saw
        // die are countered with the next epoch instead of adopted.
        for env in inbox {
            let (epoch, candidate) = unpack(env.msg);
            let proposal = if state.dead.contains(&candidate) {
                pack(epoch + 1, ctx.id)
            } else {
                env.msg
            };
            state.belief = state.belief.max(proposal);
        }

        // Silence detection: everyone alive broadcasts every round, so from
        // round 2 on a missing heartbeat counts against the sender — and
        // `missed_threshold` *consecutive* misses are a crash verdict (a
        // single miss reads as message loss, not death).
        if ctx.round >= 2 {
            for (i, &u) in ctx.neighbors.iter().enumerate() {
                if state.dead.contains(&u) {
                    continue;
                }
                if inbox.iter().any(|env| env.src == u) {
                    state.missed[i] = 0;
                    continue;
                }
                state.missed[i] += 1;
                if state.missed[i] >= self.missed_threshold {
                    state.dead.push(u);
                    if state.candidate() == u {
                        state.belief = pack(state.epoch() + 1, ctx.id);
                    }
                }
            }
        }

        // A bumped epoch enrolls every survivor that hears of it, so the
        // flood converges to the largest surviving id.
        let (epoch, candidate) = unpack(state.belief);
        if epoch > 0 && ctx.id > candidate {
            state.belief = pack(epoch, ctx.id);
        }

        out.broadcast(state.belief);
    }

    fn halted(&self, ctx: &NodeCtx, _state: &ElectionState) -> bool {
        ctx.round >= self.horizon
    }

    fn round_budget_hint(&self) -> Option<u64> {
        Some(self.horizon + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;
    use mfd_sim::{FaultOutcome, SimConfig, Simulator};

    use crate::models::FaultModel;

    #[test]
    fn without_crashes_everyone_keeps_the_initial_leader() {
        let g = generators::triangulated_grid(4, 4);
        let program = ReElectionProgram::new(3, g.n(), 0);
        let run = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &program, &FaultModel::none())
            .unwrap();
        assert_eq!(run.outcome, FaultOutcome::Completed);
        for s in &run.run.states {
            assert_eq!(s.epoch(), 0);
            assert_eq!(s.candidate(), 3);
            assert!(s.dead.is_empty());
        }
    }

    #[test]
    fn survivors_agree_on_the_largest_surviving_id() {
        let g = generators::wheel(16); // hub 0, rim 1..=15
        let leader = 0;
        let crash_round = 3;
        let program = ReElectionProgram::new(leader, g.n(), crash_round);
        let model = FaultModel::none()
            .with_crash(leader, crash_round)
            .with_detection_delay(2);
        let run = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &program, &model)
            .unwrap();
        assert_eq!(run.outcome, FaultOutcome::Completed);
        assert_eq!(run.survivors(), (1..16).collect::<Vec<_>>());
        for v in run.survivors() {
            let s = &run.run.states[v];
            assert!(s.epoch() >= 1, "vertex {v} never left epoch 0");
            assert_eq!(s.candidate(), 15, "vertex {v} disagrees");
        }
    }

    #[test]
    fn election_composes_with_message_loss() {
        // The point of the k-missed detector: crash the leader *and* lose 5%
        // of all heartbeats. Single missing heartbeats are forgiven, the
        // crashed leader's permanent silence is not, and the survivors still
        // converge on the largest surviving id.
        let g = generators::wheel(16);
        let leader = 0;
        let crash_round = 3;
        let program = ReElectionProgram::new(leader, g.n(), crash_round);
        assert_eq!(program.missed_threshold, 3);
        let model = FaultModel::iid_loss(0.05)
            .with_crash(leader, crash_round)
            .with_detection_delay(2);
        let run = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &program, &model)
            .unwrap();
        assert_eq!(run.outcome, FaultOutcome::Completed);
        for v in run.survivors() {
            let s = &run.run.states[v];
            assert!(s.epoch() >= 1, "vertex {v} never left epoch 0");
            assert_eq!(s.candidate(), 15, "vertex {v} disagrees");
            // Nobody read a lost heartbeat as a death verdict.
            assert_eq!(s.dead, vec![leader], "vertex {v} false-detected");
        }
    }

    #[test]
    fn a_unit_threshold_reproduces_the_loss_intolerant_detector() {
        // Regression guard for the old semantics: with k = 1 a single
        // missing heartbeat is an immediate verdict.
        let g = generators::cycle(8);
        let program = ReElectionProgram::new(7, g.n(), 4).with_missed_threshold(1);
        let model = FaultModel::none().with_crash(2, 4);
        let run = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &program, &model)
            .unwrap();
        assert!(run.run.states[1].dead.contains(&2));
        assert!(run.run.states[3].dead.contains(&2));
    }

    #[test]
    fn non_leader_crashes_do_not_trigger_an_election() {
        let g = generators::cycle(8);
        let program = ReElectionProgram::new(7, g.n(), 4);
        let model = FaultModel::none().with_crash(2, 4);
        let run = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &program, &model)
            .unwrap();
        for v in run.survivors() {
            let s = &run.run.states[v];
            assert_eq!(s.epoch(), 0, "vertex {v} bumped the epoch needlessly");
            assert_eq!(s.candidate(), 7);
        }
        // The crash was still observed by 2's neighbors.
        assert!(run.run.states[1].dead.contains(&2));
        assert!(run.run.states[3].dead.contains(&2));
    }
}
