//! The reliable-delivery adapter: wrap any [`NodeProgram`], run it on a
//! lossy network, get loss-free semantics back.
//!
//! [`Reliable<P>`] is itself a `NodeProgram`, so it runs unmodified on every
//! engine; its *physical* rounds carry one [`Frame`] per edge per round — the
//! α-synchronizer pulse with transport metadata piggybacked — while the
//! wrapped program advances through *logical* rounds gated on provably
//! complete inboxes. The transport is a classic per-edge ARQ:
//!
//! * **Sequence numbers.** Every inner message queued on an edge gets the
//!   next per-edge sequence number; receivers deduplicate and reorder by it,
//!   so duplication and slippage faults are absorbed outright.
//! * **Cumulative acks.** Every frame carries the receiver's in-order prefix
//!   count for the reverse direction. Acks are idempotent summaries, so lost
//!   ack frames cost nothing — the next frame repeats them.
//! * **Timeout retransmission.** A sender whose oldest unacked message has
//!   seen no ack progress for `timeout` physical rounds resends from the
//!   unacked prefix. Retransmissions ride later frames, whose fault fates
//!   are sampled independently, so every message is delivered eventually
//!   (with probability 1 under any loss rate < 1).
//! * **Round boundaries.** Frames also repeat the sender's last completed
//!   inner round and the cumulative message count queued through it. A
//!   vertex runs inner round `k + 1` only when, for every neighbor, it holds
//!   that neighbor's traffic complete up to its announced boundary covering
//!   round `k` — restoring the exact synchronous inbox contract, so the
//!   inner program's trajectory is *bit-for-bit* the loss-free one.
//!
//! Termination uses a linger close (the TIME_WAIT of this protocol): once a
//! vertex's inner program has halted, all its sends are acked, and every
//! neighbor has announced a final boundary it has fully received, it keeps
//! answering with pure ack frames for `linger` more rounds — giving its
//! final acks and fin flags `linger` independent chances to survive the
//! fault process — and then halts. Two-generals says certainty is
//! impossible; the linger makes the residual wedge probability `p^linger`
//! per edge, and determinism makes any given seed's outcome reproducible.
//!
//! **Peer-crash cutoff.** A live peer frames every physical round, so total
//! silence is a verdict the transport can act on: a neighbor that has sent
//! nothing for `peer_cutoff` rounds while its edge is still unsettled is
//! presumed crash-stopped and *excused* — retransmissions to it cease (the
//! adapter used to retransmit to a dead peer forever), its round boundary is
//! waived from the inbox gate, and the close handshake no longer waits for
//! its acks or fin. Under pure loss a false verdict needs `peer_cutoff`
//! consecutive frame losses (probability `p^cutoff` per edge — negligible at
//! the default of 24), so loss recovery is unaffected while crash
//! experiments can finally run *through* the adapter: losses are repaired,
//! crashes surface to the inner program as the permanent silence they are.
//!
//! Overhead is measured, not hidden: [`Reliable::stats`] aggregates frames,
//! fresh vs. retransmitted payload and ack-only pulses from the final
//! states, reported next to the engines' usual `RoundMeter` accounting.

use std::collections::BTreeMap;

use mfd_congest::CongestError;
use mfd_routing::programs::GatherProgram;
use mfd_runtime::{Envelope, NodeCtx, NodeProgram, Outbox, RuntimeMessage};
use mfd_trace::{Event, TraceSink};

/// One transport frame: the per-edge, per-physical-round unit of the
/// adapter. Metadata (ack, boundary, fin) is cumulative/sticky and repeated
/// in every frame, so individual frame losses never lose information —
/// only payload needs retransmission.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<M> {
    /// Receiver-direction cumulative ack: in-order messages received.
    pub ack: u64,
    /// The sender's last completed inner round on this edge...
    pub boundary_round: u64,
    /// ...and the cumulative message count queued through it.
    pub boundary_cum: u64,
    /// The sender's inner program has halted; the boundary is final.
    pub fin: bool,
    /// `(seq, inner round, message)` entries — fresh or retransmitted.
    pub payload: Vec<(u64, u64, M)>,
}

impl<M: RuntimeMessage> RuntimeMessage for Frame<M> {
    /// Payload words, floored at one: the transport header (a few counters
    /// and flags) is O(log n) bits and rides the mandatory CONGEST word, the
    /// standard piggybacking idealization — an empty frame is the pure
    /// ack/boundary pulse.
    fn words(&self) -> usize {
        self.payload
            .iter()
            .map(|(_, _, m)| m.words())
            .sum::<usize>()
            .max(1)
    }
}

/// Per-edge sender state.
#[derive(Clone, Hash)]
struct EdgeTx<M> {
    /// Every message ever queued on this edge: `sent[seq] = (round, msg)`.
    sent: Vec<(u64, M)>,
    /// Peer's cumulative in-order ack.
    acked: u64,
    /// First never-transmitted sequence number.
    tx_next: u64,
    /// Physical round of the last ack advance (retransmission backoff).
    last_progress: u64,
}

/// Per-edge receiver state.
#[derive(Clone, Hash)]
struct EdgeRx<M> {
    /// Received, not yet delivered: `seq -> (inner round, msg)`.
    pending: BTreeMap<u64, (u64, M)>,
    /// Sequence numbers `0..prefix` have all been received.
    prefix: u64,
    /// Sequence numbers `0..delivered` were handed to the inner program.
    delivered: u64,
    /// Peer's announced boundary, max-merged over all frames seen.
    peer_round: u64,
    /// Cumulative count at that boundary.
    peer_cum: u64,
    /// Peer announced its boundary as final.
    peer_fin: bool,
    /// Last physical round a frame arrived from the peer (0 = never).
    last_heard: u64,
    /// Peer presumed crash-stopped (the silence cutoff fired): excused from
    /// the gate and the close handshake, no longer framed.
    dead: bool,
}

/// State of one vertex of [`Reliable<P>`]: the wrapped program's state plus
/// the transport machinery.
pub struct ReliableState<P: NodeProgram> {
    /// The wrapped program's state, advanced exactly as on a loss-free
    /// network.
    pub inner: P::State,
    /// Completed inner rounds.
    pub inner_round: u64,
    /// Whether the wrapped program has halted.
    pub inner_halted: bool,
    tx: Vec<EdgeTx<P::Msg>>,
    rx: Vec<EdgeRx<P::Msg>>,
    /// Physical round at which the linger close expires.
    close_at: Option<u64>,
    done: bool,
    /// Frames sent (one per edge per physical round until halting).
    pub frames_sent: u64,
    /// Frames that carried at least one payload message.
    pub payload_frames: u64,
    /// First-time payload transmissions.
    pub fresh_sent: u64,
    /// Retransmitted payload entries.
    pub retransmitted: u64,
    /// Messages handed to the inner program.
    pub delivered_inner: u64,
    /// Neighbors this vertex excused as crash-stopped (silence cutoff).
    pub peers_excused: u64,
    /// Transport events recorded during the run (only with
    /// [`Reliable::with_trace`]): `(round, kind, peer, count)` with kinds
    /// [`TRACE_RETRANSMIT`], [`TRACE_EXCUSE`], [`TRACE_CLOSE`]. Drained into
    /// a sink by [`Reliable::drain_trace`].
    trace_log: Vec<(u64, u8, usize, u64)>,
}

impl<P: NodeProgram> Clone for ReliableState<P>
where
    P::State: Clone,
{
    fn clone(&self) -> Self {
        ReliableState {
            inner: self.inner.clone(),
            inner_round: self.inner_round,
            inner_halted: self.inner_halted,
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            close_at: self.close_at,
            done: self.done,
            frames_sent: self.frames_sent,
            payload_frames: self.payload_frames,
            fresh_sent: self.fresh_sent,
            retransmitted: self.retransmitted,
            delivered_inner: self.delivered_inner,
            peers_excused: self.peers_excused,
            trace_log: self.trace_log.clone(),
        }
    }
}

/// Digest-traceability: a [`ReliableState`] hashes every field — the inner
/// program's state *and* the full transport machinery — so digest chains
/// over wrapped runs discriminate transport-level divergence too, not just
/// the inner trajectory. Checkpoint/resume equality is therefore the strong
/// claim: the resumed run matches ARQ-state-for-ARQ-state.
impl<P: NodeProgram> std::hash::Hash for ReliableState<P>
where
    P::State: std::hash::Hash,
    P::Msg: std::hash::Hash,
{
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.inner_round.hash(state);
        self.inner_halted.hash(state);
        self.tx.hash(state);
        self.rx.hash(state);
        self.close_at.hash(state);
        self.done.hash(state);
        self.frames_sent.hash(state);
        self.payload_frames.hash(state);
        self.fresh_sent.hash(state);
        self.retransmitted.hash(state);
        self.delivered_inner.hash(state);
        self.peers_excused.hash(state);
        self.trace_log.hash(state);
    }
}

/// One edge's send window as plain data (every field public), one leg of
/// [`ReliableState::to_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTxParts<M> {
    /// Every message ever queued on this edge: `sent[seq] = (round, msg)`.
    pub sent: Vec<(u64, M)>,
    /// Peer's cumulative in-order ack.
    pub acked: u64,
    /// First never-transmitted sequence number.
    pub tx_next: u64,
    /// Physical round of the last ack advance.
    pub last_progress: u64,
}

/// One edge's receive window as plain data, one leg of
/// [`ReliableState::to_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRxParts<M> {
    /// Received-but-undelivered messages, `(seq, (inner round, msg))`,
    /// sorted by sequence number (the canonical order of the underlying
    /// B-tree, so equal states encode to equal bytes).
    pub pending: Vec<(u64, (u64, M))>,
    /// Sequence numbers `0..prefix` have all been received.
    pub prefix: u64,
    /// Sequence numbers `0..delivered` were handed to the inner program.
    pub delivered: u64,
    /// Peer's announced boundary.
    pub peer_round: u64,
    /// Cumulative count at that boundary.
    pub peer_cum: u64,
    /// Peer announced its boundary as final.
    pub peer_fin: bool,
    /// Last physical round a frame arrived (0 = never).
    pub last_heard: u64,
    /// Peer presumed crash-stopped.
    pub dead: bool,
}

/// A [`ReliableState`] as plain data — every private transport field made
/// public, maps flattened to sorted vectors — so checkpoint codecs
/// (`mfd-replay`) outside this crate can encode and rebuild it.
/// [`ReliableState::from_parts`] ∘ [`ReliableState::to_parts`] is the
/// identity on run behavior: a resumed run continues exactly as the
/// original would have.
pub struct ReliableParts<P: NodeProgram> {
    /// The wrapped program's state.
    pub inner: P::State,
    /// Completed inner rounds.
    pub inner_round: u64,
    /// Whether the wrapped program has halted.
    pub inner_halted: bool,
    /// Per-edge sender state, in sorted-adjacency slot order.
    pub tx: Vec<EdgeTxParts<P::Msg>>,
    /// Per-edge receiver state, in sorted-adjacency slot order.
    pub rx: Vec<EdgeRxParts<P::Msg>>,
    /// Physical round at which the linger close expires.
    pub close_at: Option<u64>,
    /// The close handshake finished; the vertex halts.
    pub done: bool,
    /// Frames sent.
    pub frames_sent: u64,
    /// Frames that carried payload.
    pub payload_frames: u64,
    /// First-time payload transmissions.
    pub fresh_sent: u64,
    /// Retransmitted payload entries.
    pub retransmitted: u64,
    /// Messages handed to the inner program.
    pub delivered_inner: u64,
    /// Neighbors excused as crash-stopped.
    pub peers_excused: u64,
    /// Recorded transport events (`(round, kind, peer, count)`).
    pub trace_log: Vec<(u64, u8, usize, u64)>,
}

impl<P: NodeProgram> ReliableState<P> {
    /// Captures this vertex's complete transport state as plain data.
    pub fn to_parts(&self) -> ReliableParts<P>
    where
        P::State: Clone,
    {
        ReliableParts {
            inner: self.inner.clone(),
            inner_round: self.inner_round,
            inner_halted: self.inner_halted,
            tx: self
                .tx
                .iter()
                .map(|t| EdgeTxParts {
                    sent: t.sent.clone(),
                    acked: t.acked,
                    tx_next: t.tx_next,
                    last_progress: t.last_progress,
                })
                .collect(),
            rx: self
                .rx
                .iter()
                .map(|x| EdgeRxParts {
                    pending: x.pending.iter().map(|(&s, p)| (s, p.clone())).collect(),
                    prefix: x.prefix,
                    delivered: x.delivered,
                    peer_round: x.peer_round,
                    peer_cum: x.peer_cum,
                    peer_fin: x.peer_fin,
                    last_heard: x.last_heard,
                    dead: x.dead,
                })
                .collect(),
            close_at: self.close_at,
            done: self.done,
            frames_sent: self.frames_sent,
            payload_frames: self.payload_frames,
            fresh_sent: self.fresh_sent,
            retransmitted: self.retransmitted,
            delivered_inner: self.delivered_inner,
            peers_excused: self.peers_excused,
            trace_log: self.trace_log.clone(),
        }
    }

    /// Rebuilds the transport state captured by [`ReliableState::to_parts`].
    pub fn from_parts(parts: ReliableParts<P>) -> Self {
        ReliableState {
            inner: parts.inner,
            inner_round: parts.inner_round,
            inner_halted: parts.inner_halted,
            tx: parts
                .tx
                .into_iter()
                .map(|t| EdgeTx {
                    sent: t.sent,
                    acked: t.acked,
                    tx_next: t.tx_next,
                    last_progress: t.last_progress,
                })
                .collect(),
            rx: parts
                .rx
                .into_iter()
                .map(|x| EdgeRx {
                    pending: x.pending.into_iter().collect(),
                    prefix: x.prefix,
                    delivered: x.delivered,
                    peer_round: x.peer_round,
                    peer_cum: x.peer_cum,
                    peer_fin: x.peer_fin,
                    last_heard: x.last_heard,
                    dead: x.dead,
                })
                .collect(),
            close_at: parts.close_at,
            done: parts.done,
            frames_sent: parts.frames_sent,
            payload_frames: parts.payload_frames,
            fresh_sent: parts.fresh_sent,
            retransmitted: parts.retransmitted,
            delivered_inner: parts.delivered_inner,
            peers_excused: parts.peers_excused,
            trace_log: parts.trace_log,
        }
    }
}

/// [`ReliableState::trace_log`] kind: a timeout retransmission burst.
const TRACE_RETRANSMIT: u8 = 0;
/// [`ReliableState::trace_log`] kind: a peer excused as crash-stopped.
const TRACE_EXCUSE: u8 = 1;
/// [`ReliableState::trace_log`] kind: the linger close was scheduled.
const TRACE_CLOSE: u8 = 2;

/// Aggregated transport statistics of a completed [`Reliable<P>`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReliableStats {
    /// Total frames sent.
    pub frames: u64,
    /// Frames carrying payload.
    pub payload_frames: u64,
    /// Pure ack/boundary pulses.
    pub ack_frames: u64,
    /// First-time payload transmissions (equals the inner program's send
    /// count).
    pub fresh: u64,
    /// Retransmitted payload entries.
    pub retransmitted: u64,
    /// Messages delivered to inner programs.
    pub delivered_inner: u64,
    /// Peer-crash excusals issued (one per vertex per silent dead neighbor).
    pub excused: u64,
}

impl ReliableStats {
    /// Retransmitted entries per fresh message — the loss-recovery overhead.
    pub fn retransmit_overhead(&self) -> f64 {
        self.retransmitted as f64 / (self.fresh.max(1)) as f64
    }

    /// Fraction of frames that were pure acks — the piggyback overhead.
    pub fn ack_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.ack_frames as f64 / self.frames as f64
        }
    }
}

/// Wraps a [`NodeProgram`] with per-edge sequence numbers, cumulative acks
/// and timeout retransmission, turning a lossy simulated network back into a
/// reliable one (module docs).
#[derive(Debug, Clone)]
pub struct Reliable<P> {
    inner: P,
    timeout: u64,
    linger: u64,
    max_frame_words: usize,
    budget: Option<u64>,
    peer_cutoff: u64,
    trace: bool,
}

/// Inner rounds an isolated (or fully caught-up) vertex may run per physical
/// round, bounding the catch-up loop.
const CATCHUP_ROUNDS: u64 = 64;

/// Default physical-round budget multiplier over the inner program's hint.
const BUDGET_FACTOR: u64 = 8;

impl<P: NodeProgram> Reliable<P> {
    /// Wraps `inner` with the default transport (timeout 4, linger 8, peer
    /// cutoff 24, one payload word per frame).
    pub fn new(inner: P) -> Self {
        Reliable {
            inner,
            timeout: 4,
            linger: 8,
            max_frame_words: 1,
            budget: None,
            peer_cutoff: 24,
            trace: false,
        }
    }

    /// Records transport events (retransmissions, excusals, link closes)
    /// into each vertex's state for [`Reliable::drain_trace`]. Off by
    /// default so untraced runs stay bit-identical to the pre-trace adapter.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Sets the retransmission timeout, in physical rounds (clamped ≥ 1).
    pub fn with_timeout(mut self, timeout: u64) -> Self {
        self.timeout = timeout.max(1);
        self
    }

    /// Sets the peer-crash cutoff: physical rounds of total silence on an
    /// unsettled edge after which the peer is presumed crash-stopped
    /// (clamped ≥ 2; a false verdict under loss `p` has probability
    /// `p^cutoff` per edge, so larger values trade detection latency for
    /// robustness at extreme loss rates).
    pub fn with_peer_cutoff(mut self, cutoff: u64) -> Self {
        self.peer_cutoff = cutoff.max(2);
        self
    }

    /// Sets the linger close duration, in physical rounds.
    pub fn with_linger(mut self, linger: u64) -> Self {
        self.linger = linger;
        self
    }

    /// Overrides the physical round budget (default: 8× the inner hint).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The wrapped program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Borrows the wrapped program's states out of a run's final states.
    pub fn inner_states(states: &[ReliableState<P>]) -> Vec<&P::State> {
        states.iter().map(|s| &s.inner).collect()
    }

    /// Clones the wrapped program's states out of a run's final states.
    pub fn inner_states_cloned(states: &[ReliableState<P>]) -> Vec<P::State>
    where
        P::State: Clone,
    {
        states.iter().map(|s| s.inner.clone()).collect()
    }

    /// Aggregates the transport statistics of a run.
    pub fn stats(states: &[ReliableState<P>]) -> ReliableStats {
        let mut out = ReliableStats::default();
        for s in states {
            out.frames += s.frames_sent;
            out.payload_frames += s.payload_frames;
            out.fresh += s.fresh_sent;
            out.retransmitted += s.retransmitted;
            out.delivered_inner += s.delivered_inner;
            out.excused += s.peers_excused;
        }
        out.ack_frames = out.frames - out.payload_frames;
        out
    }

    /// Replays the transport events recorded by a [`Reliable::with_trace`]
    /// run into `sink` as [`Event::Retransmit`] / [`Event::Excuse`] /
    /// [`Event::LinkClose`], sorted by `(round, vertex, kind, peer)` — the engines
    /// step vertices in parallel, so events are journaled per vertex during
    /// the run and serialized deterministically here, after it.
    ///
    /// Without `with_trace` the logs are empty and this is a no-op.
    pub fn drain_trace(states: &[ReliableState<P>], sink: &mut dyn TraceSink) {
        let mut log: Vec<(u64, usize, u8, usize, u64)> = states
            .iter()
            .enumerate()
            .flat_map(|(v, s)| {
                s.trace_log
                    .iter()
                    .map(move |&(round, kind, peer, count)| (round, v, kind, peer, count))
            })
            .collect();
        log.sort_unstable();
        for (round, vertex, kind, peer, count) in log {
            let event = match kind {
                TRACE_RETRANSMIT => Event::Retransmit {
                    vertex,
                    peer,
                    round,
                    count,
                },
                TRACE_EXCUSE => Event::Excuse {
                    vertex,
                    peer,
                    round,
                },
                _ => Event::LinkClose { vertex, round },
            };
            sink.event(&event);
        }
    }

    /// Neighbor slot of `v` in the sorted adjacency.
    fn slot(ctx: &NodeCtx, v: usize) -> usize {
        ctx.neighbors
            .binary_search(&v)
            .expect("frame from a non-neighbor")
    }

    /// Whether inner round `k` may run: for every neighbor, its announced
    /// boundary covers round `k - 1` (or is final) and all traffic through
    /// that boundary has been received. Excused (presumed-crashed) peers are
    /// waived — the inner program sees from them exactly the permanent
    /// silence a real crash produces.
    fn gate(state: &ReliableState<P>, k: u64) -> bool {
        state.rx.iter().all(|rx| {
            rx.dead || ((rx.peer_fin || rx.peer_round >= k - 1) && rx.prefix >= rx.peer_cum)
        })
    }
}

impl<P: NodeProgram> NodeProgram for Reliable<P> {
    type State = ReliableState<P>;
    type Msg = Frame<P::Msg>;

    fn init(&self, ctx: &NodeCtx) -> ReliableState<P> {
        let inner = self.inner.init(ctx);
        let inner_halted = self.inner.halted(ctx, &inner);
        let deg = ctx.degree();
        ReliableState {
            inner,
            inner_round: 0,
            inner_halted,
            tx: (0..deg)
                .map(|_| EdgeTx {
                    sent: Vec::new(),
                    acked: 0,
                    tx_next: 0,
                    last_progress: 0,
                })
                .collect(),
            rx: (0..deg)
                .map(|_| EdgeRx {
                    pending: BTreeMap::new(),
                    prefix: 0,
                    delivered: 0,
                    peer_round: 0,
                    peer_cum: 0,
                    peer_fin: false,
                    last_heard: 0,
                    dead: false,
                })
                .collect(),
            close_at: None,
            // An isolated vertex with a halted program has nothing to close;
            // anyone with neighbors still owes them fin frames.
            done: inner_halted && deg == 0,
            frames_sent: 0,
            payload_frames: 0,
            fresh_sent: 0,
            retransmitted: 0,
            delivered_inner: 0,
            peers_excused: 0,
            trace_log: Vec::new(),
        }
    }

    fn round(
        &self,
        ctx: &NodeCtx,
        state: &mut ReliableState<P>,
        inbox: &[Envelope<Frame<P::Msg>>],
        out: &mut Outbox<'_, Frame<P::Msg>>,
    ) {
        let r = ctx.round;

        // 1. Absorb incoming frames: acks, boundaries, payload. Duplicate
        //    and out-of-order deliveries (the faults this adapter exists to
        //    absorb) are resolved here by sequence number.
        for env in inbox {
            let i = Self::slot(ctx, env.src);
            let frame = &env.msg;
            if frame.ack > state.tx[i].acked {
                state.tx[i].acked = frame.ack;
                state.tx[i].last_progress = r;
            }
            let rx = &mut state.rx[i];
            rx.last_heard = r;
            rx.peer_round = rx.peer_round.max(frame.boundary_round);
            rx.peer_cum = rx.peer_cum.max(frame.boundary_cum);
            rx.peer_fin |= frame.fin;
            for (seq, round, msg) in &frame.payload {
                if *seq < rx.delivered || rx.pending.contains_key(seq) {
                    continue; // duplicate
                }
                rx.pending.insert(*seq, (*round, msg.clone()));
                while rx.pending.contains_key(&rx.prefix) {
                    rx.prefix += 1;
                }
            }
        }

        // 1b. Peer-crash cutoff: a live peer frames every round, so total
        //     silence for `peer_cutoff` rounds on an edge that is not
        //     settled (fin seen, boundary received, everything acked — then
        //     silence is a normal close) is a crash verdict. The peer is
        //     excused: no more frames, no more waiting.
        for i in 0..ctx.degree() {
            let rx = &state.rx[i];
            let tx = &state.tx[i];
            let settled =
                rx.peer_fin && rx.prefix >= rx.peer_cum && tx.acked == tx.sent.len() as u64;
            if !rx.dead && !settled && r.saturating_sub(rx.last_heard) >= self.peer_cutoff {
                state.rx[i].dead = true;
                state.peers_excused += 1;
                if self.trace {
                    state.trace_log.push((r, TRACE_EXCUSE, ctx.neighbors[i], 0));
                }
            }
        }

        // 2. Drive the inner program through every logical round whose inbox
        //    is provably complete (several can unblock at once after a
        //    retransmission lands).
        for _ in 0..CATCHUP_ROUNDS {
            if state.inner_halted {
                break;
            }
            let k = state.inner_round + 1;
            if !Self::gate(state, k) {
                break;
            }
            let mut inner_inbox: Vec<Envelope<P::Msg>> = Vec::new();
            for (i, &u) in ctx.neighbors.iter().enumerate() {
                let rx = &mut state.rx[i];
                while rx.delivered < rx.prefix {
                    match rx.pending.get(&rx.delivered) {
                        Some(&(round, _)) if round < k => {
                            let (_, msg) = rx.pending.remove(&rx.delivered).unwrap();
                            inner_inbox.push(Envelope { src: u, msg });
                            rx.delivered += 1;
                        }
                        _ => break,
                    }
                }
            }
            state.delivered_inner += inner_inbox.len() as u64;

            let ictx = ctx.at_round(k);
            let mut ibox: Outbox<'_, P::Msg> = Outbox::new(ctx.id, ctx.neighbors);
            self.inner
                .round(&ictx, &mut state.inner, &inner_inbox, &mut ibox);
            state.inner_halted = self.inner.halted(&ictx, &state.inner);
            state.inner_round = k;
            if let Some(err) = ibox.violation() {
                // Replay the inner program's illegal send on the wrapper's
                // outbox so the engine aborts with the same verdict.
                let CongestError::NotAnEdge { dst, .. } = *err else {
                    unreachable!("send-time violations are always NotAnEdge");
                };
                out.send(
                    dst,
                    Frame {
                        ack: 0,
                        boundary_round: 0,
                        boundary_cum: 0,
                        fin: false,
                        payload: Vec::new(),
                    },
                );
                return;
            }
            for (dst, msg, _words) in ibox.into_sends() {
                let i = Self::slot(ctx, dst);
                state.tx[i].sent.push((k, msg));
            }
        }

        // 3. Closing: once the inner program has halted, everything sent is
        //    acked and every neighbor's final boundary is fully received,
        //    linger (pure ack frames keep flowing) and then halt. Excused
        //    peers can neither ack nor announce — they are waived.
        if state.close_at.is_none()
            && state.inner_halted
            && state
                .tx
                .iter()
                .zip(&state.rx)
                .all(|(t, x)| x.dead || t.acked == t.sent.len() as u64)
            && state
                .rx
                .iter()
                .all(|x| x.dead || (x.peer_fin && x.prefix >= x.peer_cum))
        {
            state.close_at = Some(r + self.linger);
            if self.trace {
                state.trace_log.push((r, TRACE_CLOSE, 0, 0));
            }
        }
        state.done = state.close_at.is_some_and(|c| r >= c);

        // 4. Emit one frame per edge: retransmissions first (they unblock
        //    the receiver), then fresh payload, within the per-frame word
        //    budget; metadata rides every frame regardless. Excused peers
        //    get nothing — the retransmission leak this cutoff closes.
        for (i, &u) in ctx.neighbors.iter().enumerate() {
            if state.rx[i].dead {
                continue;
            }
            let mut payload: Vec<(u64, u64, P::Msg)> = Vec::new();
            let mut words = 0usize;
            let mut retransmitted = 0u64;
            let mut fresh = 0u64;
            let max_words = self.max_frame_words;
            let fits = move |words: &mut usize, w: usize, empty: bool| {
                if *words + w > max_words && !empty {
                    false
                } else {
                    *words += w;
                    true
                }
            };
            let tx = &mut state.tx[i];
            let had_outstanding = tx.acked < tx.tx_next;
            if had_outstanding && r.saturating_sub(tx.last_progress) >= self.timeout {
                for seq in tx.acked..tx.tx_next {
                    let (round, msg) = &tx.sent[seq as usize];
                    if !fits(&mut words, msg.words(), payload.is_empty()) {
                        break;
                    }
                    payload.push((seq, *round, msg.clone()));
                    retransmitted += 1;
                }
                tx.last_progress = r; // back off until the next timeout
            }
            while (tx.tx_next as usize) < tx.sent.len() {
                let (round, msg) = &tx.sent[tx.tx_next as usize];
                if !fits(&mut words, msg.words(), payload.is_empty()) {
                    break;
                }
                payload.push((tx.tx_next, *round, msg.clone()));
                tx.tx_next += 1;
                fresh += 1;
            }
            // The retransmission clock starts when data first becomes
            // outstanding, not at round zero — otherwise a first send late
            // in the run would look instantly timed out.
            if !had_outstanding && tx.acked < tx.tx_next {
                tx.last_progress = r;
            }
            let boundary_cum = tx.sent.len() as u64;
            if self.trace && retransmitted > 0 {
                state
                    .trace_log
                    .push((r, TRACE_RETRANSMIT, u, retransmitted));
            }
            state.retransmitted += retransmitted;
            state.fresh_sent += fresh;
            state.frames_sent += 1;
            if !payload.is_empty() {
                state.payload_frames += 1;
            }
            out.send(
                u,
                Frame {
                    ack: state.rx[i].prefix,
                    boundary_round: state.inner_round,
                    boundary_cum,
                    fin: state.inner_halted,
                    payload,
                },
            );
        }
    }

    fn halted(&self, _ctx: &NodeCtx, state: &ReliableState<P>) -> bool {
        state.done
    }

    fn round_budget_hint(&self) -> Option<u64> {
        self.budget.or_else(|| {
            self.inner
                .round_budget_hint()
                .map(|h| h.saturating_mul(BUDGET_FACTOR) + self.linger + self.peer_cutoff + 512)
        })
    }
}

impl<P> GatherProgram for Reliable<P>
where
    P: GatherProgram,
    P::State: Clone,
{
    fn strategy_name(&self) -> &'static str {
        self.inner.strategy_name()
    }

    fn total_messages(&self) -> usize {
        self.inner.total_messages()
    }

    fn per_vertex_delivered(&self, states: &[ReliableState<P>]) -> Vec<usize> {
        let inner = Self::inner_states_cloned(states);
        self.inner.per_vertex_delivered(&inner)
    }

    fn leader_received(&self, states: &[ReliableState<P>]) -> u64 {
        let inner = Self::inner_states_cloned(states);
        self.inner.leader_received(&inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;
    use mfd_runtime::{Executor, ExecutorConfig};
    use mfd_sim::{FaultOutcome, SimConfig, Simulator};

    use crate::models::FaultModel;

    /// Every vertex broadcasts its id for two rounds, then sums three rounds
    /// of receipts — enough traffic to make losses visible.
    struct Chatter;

    impl NodeProgram for Chatter {
        type State = (u64, u64);
        type Msg = u64;

        fn init(&self, _ctx: &NodeCtx) -> (u64, u64) {
            (0, 0)
        }

        fn round(
            &self,
            ctx: &NodeCtx,
            state: &mut (u64, u64),
            inbox: &[Envelope<u64>],
            out: &mut Outbox<'_, u64>,
        ) {
            for env in inbox {
                state.0 += env.msg;
                state.1 += 1;
            }
            if ctx.round <= 2 {
                out.broadcast(ctx.id as u64 + ctx.round);
            }
        }

        fn halted(&self, ctx: &NodeCtx, _state: &(u64, u64)) -> bool {
            ctx.round >= 3
        }
    }

    #[test]
    fn loss_free_wrapped_run_matches_the_plain_program_exactly() {
        let g = generators::triangulated_grid(5, 6);
        let plain = Executor::new(ExecutorConfig::default())
            .run(&g, &Chatter)
            .unwrap();
        let sim = Simulator::new(SimConfig::default());
        let wrapped = sim.run(&g, &Reliable::new(Chatter)).unwrap();
        assert_eq!(
            plain.states,
            Reliable::<Chatter>::inner_states_cloned(&wrapped.states)
        );
        let stats = Reliable::<Chatter>::stats(&wrapped.states);
        assert_eq!(stats.retransmitted, 0);
        assert_eq!(stats.fresh, plain.messages);
        assert_eq!(stats.delivered_inner, plain.messages);
        // Lockstep: inner round k runs at physical round k, plus the close
        // handshake tail (fin exchange + linger).
        assert!(wrapped.rounds >= plain.rounds);
        assert!(wrapped.rounds <= plain.rounds + 8 + 3);
    }

    #[test]
    fn heavy_iid_loss_is_fully_repaired() {
        let g = generators::wheel(24);
        let model = FaultModel::iid_loss(0.3);
        let sim = Simulator::new(SimConfig::default());
        let clean = Executor::new(ExecutorConfig::default())
            .run(&g, &Chatter)
            .unwrap();

        // Raw: the program mis-counts (losses reach the inbox contract).
        let raw = sim.run_with_faults(&g, &Chatter, &model).unwrap();
        assert!(raw.run.stats.lost_messages > 0);
        assert_ne!(clean.states, raw.run.states);

        // Wrapped: every vertex computes the loss-free answer.
        let wrapped = sim
            .run_with_faults(&g, &Reliable::new(Chatter), &model)
            .unwrap();
        assert_eq!(wrapped.outcome, FaultOutcome::Completed);
        assert_eq!(
            clean.states,
            Reliable::<Chatter>::inner_states_cloned(&wrapped.run.states)
        );
        let stats = Reliable::<Chatter>::stats(&wrapped.run.states);
        assert!(stats.retransmitted > 0, "no retransmissions under 30% loss");
        assert!(stats.retransmit_overhead() > 0.0);
        assert!(stats.ack_ratio() > 0.0);
    }

    #[test]
    fn duplication_and_reordering_are_absorbed_by_sequence_numbers() {
        let g = generators::cycle(10);
        let model = FaultModel::chaos(0.0, 0.3, 0.3, 4);
        let clean = Executor::new(ExecutorConfig::default())
            .run(&g, &Chatter)
            .unwrap();
        let wrapped = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &Reliable::new(Chatter), &model)
            .unwrap();
        assert_eq!(wrapped.outcome, FaultOutcome::Completed);
        assert!(
            wrapped.run.stats.slipped_messages + wrapped.run.stats.duplicated_messages > 0,
            "the chaos model never fired"
        );
        assert_eq!(
            clean.states,
            Reliable::<Chatter>::inner_states_cloned(&wrapped.run.states)
        );
    }

    #[test]
    fn faulty_wrapped_runs_are_reproducible() {
        let g = generators::triangulated_grid(4, 5);
        let model = FaultModel::chaos(0.2, 0.1, 0.1, 3);
        let sim = Simulator::new(SimConfig::default());
        let a = sim
            .run_with_faults(&g, &Reliable::new(Chatter), &model)
            .unwrap();
        let b = sim
            .run_with_faults(&g, &Reliable::new(Chatter), &model)
            .unwrap();
        assert_eq!(a.run.rounds, b.run.rounds);
        assert_eq!(a.run.messages, b.run.messages);
        assert_eq!(a.run.makespan, b.run.makespan);
        assert_eq!(
            Reliable::<Chatter>::stats(&a.run.states),
            Reliable::<Chatter>::stats(&b.run.states)
        );
        assert_eq!(
            Reliable::<Chatter>::inner_states_cloned(&a.run.states),
            Reliable::<Chatter>::inner_states_cloned(&b.run.states)
        );
    }

    #[test]
    fn dead_peers_are_excused_instead_of_retransmitted_forever() {
        // Crash one rim vertex mid-run *and* lose 20% of the frames: the
        // adapter must repair the losses, presume the silent peer dead after
        // the cutoff, stop retransmitting to it, and still close — the crash
        // experiments can finally run through the adapter instead of raw.
        let g = generators::wheel(12);
        let crashed = 3usize;
        let model = FaultModel::iid_loss(0.2)
            .with_crash(crashed, 2)
            .with_detection_delay(2);
        let sim = Simulator::new(SimConfig::default());
        let run = sim
            .run_with_faults(&g, &Reliable::new(Chatter).with_peer_cutoff(12), &model)
            .unwrap();
        assert_eq!(run.outcome, FaultOutcome::Completed);
        assert!(run.crashed[crashed]);
        let stats = Reliable::<Chatter>::stats(&run.run.states);
        // Both neighbors of the crashed vertex (hub + two rim neighbors)
        // issued an excusal; nobody else fell silent for a whole cutoff.
        assert_eq!(stats.excused, 3);
        // And the verdict is reproducible bit-for-bit.
        let again = sim
            .run_with_faults(&g, &Reliable::new(Chatter).with_peer_cutoff(12), &model)
            .unwrap();
        assert_eq!(
            Reliable::<Chatter>::stats(&again.run.states).excused,
            stats.excused
        );
        assert_eq!(
            Reliable::<Chatter>::inner_states_cloned(&again.run.states),
            Reliable::<Chatter>::inner_states_cloned(&run.run.states)
        );
    }

    #[test]
    fn loss_free_runs_never_excuse_anyone() {
        let g = generators::triangulated_grid(4, 4);
        let run = Simulator::new(SimConfig::default())
            .run(&g, &Reliable::new(Chatter))
            .unwrap();
        assert_eq!(Reliable::<Chatter>::stats(&run.states).excused, 0);
    }

    #[test]
    fn checkpointed_faulted_reliable_run_resumes_bit_identically() {
        // The acceptance configuration of the checkpoint/replay layer: a
        // wrapped program under i.i.d. loss, checkpointed mid-repair, must
        // resume onto the same fate sequence and land in the same states.
        let g = generators::wheel(12);
        let model = FaultModel::iid_loss(0.25);
        let sim = Simulator::new(SimConfig::default());
        let program = Reliable::new(Chatter);

        let mut checkpoints = Vec::new();
        let full = sim
            .run_with_faults_checkpointed(
                &g,
                &program,
                &model,
                &mut mfd_trace::NullSink,
                3,
                &mut |cp, _| checkpoints.push(cp),
            )
            .unwrap();
        assert_eq!(full.outcome, FaultOutcome::Completed);
        assert!(
            Reliable::<Chatter>::stats(&full.run.states).retransmitted > 0,
            "loss never fired; the test exercises nothing"
        );
        assert!(checkpoints.len() >= 2, "run too short to checkpoint");

        for cp in checkpoints {
            // Exercise the public parts API exactly as an external codec
            // would: flatten every vertex state to plain data and rebuild.
            let mut cp = cp;
            cp.states = cp
                .states
                .iter()
                .map(|s| ReliableState::from_parts(s.to_parts()))
                .collect();
            let resumed = sim.resume_with_faults(&g, &program, &model, cp).unwrap();
            assert_eq!(resumed.outcome, full.outcome);
            assert_eq!(resumed.run.rounds, full.run.rounds);
            assert_eq!(resumed.run.messages, full.run.messages);
            assert_eq!(resumed.run.makespan, full.run.makespan);
            assert_eq!(
                resumed.run.stats.lost_messages,
                full.run.stats.lost_messages
            );
            assert_eq!(
                Reliable::<Chatter>::stats(&resumed.run.states),
                Reliable::<Chatter>::stats(&full.run.states)
            );
            assert_eq!(
                Reliable::<Chatter>::inner_states_cloned(&resumed.run.states),
                Reliable::<Chatter>::inner_states_cloned(&full.run.states)
            );
        }
    }

    #[test]
    fn frames_declare_honest_word_counts() {
        let empty: Frame<u64> = Frame {
            ack: 3,
            boundary_round: 2,
            boundary_cum: 3,
            fin: false,
            payload: Vec::new(),
        };
        assert_eq!(empty.words(), 1);
        let loaded = Frame {
            payload: vec![(0, 1, 7u64)],
            ..empty.clone()
        };
        assert_eq!(loaded.words(), 1);
    }
}
