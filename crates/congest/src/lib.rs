//! A deterministic synchronous CONGEST/LOCAL simulator with round and bandwidth
//! accounting.
//!
//! The paper's algorithms are stated in the CONGEST model: computation proceeds in
//! synchronous rounds; in each round every vertex may send one O(log n)-bit message
//! across each incident edge; local computation is free. The quantities the paper
//! (and therefore our benchmark harness) cares about are **round counts** — wall-clock
//! time of the simulating machine is irrelevant.
//!
//! This crate provides:
//!
//! * [`RoundMeter`] — the accounting object. Distributed subroutines submit their
//!   per-round message sets through it; the meter verifies that every message travels
//!   along an edge of the graph and that the per-edge, per-direction bandwidth cap is
//!   respected, and accumulates round / message counts.
//! * [`primitives`] — the standard building blocks used by the decomposition layer:
//!   BFS-tree construction inside a cluster, convergecast / broadcast along the tree,
//!   pipelined upcast and downcast of `deg(v)` messages per vertex (the "direct"
//!   information-gathering baseline), and leader election.
//!
//! Parallel composition across clusters follows the paper's convention: routines
//! executed in parallel on vertex-disjoint clusters cost the **maximum** of their
//! round counts (each cluster only uses its own edges); this is expressed with
//! [`RoundMeter::merge_parallel`]. When clusters may overlap on edges (the
//! `(ε, φ, c)` decompositions of §4), the caller multiplies by the overlap factor `c`
//! exactly as the paper does, using [`RoundMeter::charge_rounds`].

pub mod meter;
pub mod primitives;

pub use meter::{CongestError, Message, RoundMeter};
pub use primitives::BfsTree;
