//! A deterministic synchronous CONGEST/LOCAL simulator with round and bandwidth
//! accounting.
//!
//! The paper's algorithms are stated in the CONGEST model: computation proceeds in
//! synchronous rounds; in each round every vertex may send one O(log n)-bit message
//! across each incident edge; local computation is free. The quantities the paper
//! (and therefore our benchmark harness) cares about are **round counts** — wall-clock
//! time of the simulating machine is irrelevant.
//!
//! This crate provides:
//!
//! * [`RoundMeter`] — the accounting object. Distributed subroutines submit their
//!   per-round message sets through it; the meter verifies that every message travels
//!   along an edge of the graph and that the per-edge, per-direction bandwidth cap is
//!   respected, and accumulates round / message counts.
//! * [`primitives`] — the standard building blocks used by the decomposition layer:
//!   BFS-tree construction inside a cluster, convergecast / broadcast along the tree,
//!   pipelined upcast and downcast of `deg(v)` messages per vertex (the "direct"
//!   information-gathering baseline), and leader election.
//!
//! Parallel composition across clusters follows the paper's convention: routines
//! executed in parallel on vertex-disjoint clusters cost the **maximum** of their
//! round counts (each cluster only uses its own edges); this is expressed with
//! [`RoundMeter::merge_parallel`]. When clusters may overlap on edges (the
//! `(ε, φ, c)` decompositions of §4), the caller multiplies by the overlap factor `c`
//! exactly as the paper does, using [`RoundMeter::charge_rounds`].
//!
//! # Metered vs. executed modes
//!
//! The meter supports two styles of use, and both funnel through the same
//! accounting so their round counts are directly comparable:
//!
//! * **Metered (leader-local) mode** — the traditional style of this codebase:
//!   an algorithm is computed centrally and *charges* the rounds the
//!   distributed protocol would take, either message-by-message via
//!   [`RoundMeter::round`] (which verifies each message travels an edge and
//!   respects bandwidth) or in bulk via [`RoundMeter::charge_rounds`] for
//!   sub-routines whose pattern is provably within capacity. Model compliance
//!   of `charge_rounds` call sites is an *assertion* by the caller.
//! * **Executed mode** — the `mfd-runtime` crate runs algorithms as real
//!   message-passing node programs; every synchronous round's complete message
//!   set is submitted through [`RoundMeter::round`], so model compliance is
//!   *checked at execution time*, not asserted. [`RoundMeter::check_round`] is
//!   the non-recording validation hook the executor's tests use to state the
//!   contract: an executed round is committed if and only if the meter accepts
//!   it.
//!
//! Differential tests in `mfd-core` keep the two modes honest against each
//! other: the executed ports must produce the same outputs as their metered
//! counterparts with round counts within the paper's bounds.
//!
//! A guided tour of this crate's role in the workspace lives in
//! `docs/ARCHITECTURE.md` (section "mfd-congest").

pub mod meter;
pub mod primitives;

pub use meter::{CongestError, Message, MeterParts, RoundMeter};
pub use primitives::BfsTree;
