//! Distributed building blocks: BFS trees, convergecast, broadcast, pipelined
//! up/down-casts, and leader election — all metered.
//!
//! These are the LOCAL/CONGEST primitives the decomposition layer composes:
//! intra-cluster communication happens along a BFS tree of the cluster, costing
//! O(depth) rounds per aggregate/broadcast and `O(depth + Σ items / bandwidth)`
//! rounds for pipelined bulk transfers. The expander-based information gathering of
//! §2 of the paper (load balancing, random-walk schedules) lives in `mfd-routing`
//! and is used when the pipelined tree gather would be too slow.

use std::collections::VecDeque;

use mfd_graph::Graph;

use crate::meter::{Message, RoundMeter};

/// A BFS tree of (a masked portion of) the graph, rooted at `root`.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Root vertex.
    pub root: usize,
    /// Parent of each vertex (`usize::MAX` for the root and for vertices outside the
    /// tree).
    pub parent: Vec<usize>,
    /// Depth of each vertex (`usize::MAX` outside the tree).
    pub depth: Vec<usize>,
    /// Tree members in BFS order (root first).
    pub members: Vec<usize>,
    /// Height of the tree (maximum depth).
    pub height: usize,
}

impl BfsTree {
    /// Returns `true` if `v` belongs to the tree.
    pub fn contains(&self, v: usize) -> bool {
        v < self.depth.len() && self.depth[v] != usize::MAX
    }

    /// Number of vertices in the tree.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Builds a BFS tree from `root` over the vertices where `mask[v]` is true
/// (the whole graph if `mask` is `None`), charging one round per BFS level and one
/// message per explored edge, as in the standard distributed BFS.
///
/// # Panics
///
/// Panics if `root` is outside the mask.
pub fn build_bfs_tree(
    g: &Graph,
    mask: Option<&[bool]>,
    root: usize,
    meter: &mut RoundMeter,
) -> BfsTree {
    let n = g.n();
    let in_mask = |v: usize| mask.is_none_or(|m| m[v]);
    assert!(in_mask(root), "BFS root must lie inside the mask");
    let mut parent = vec![usize::MAX; n];
    let mut depth = vec![usize::MAX; n];
    let mut members = Vec::new();
    depth[root] = 0;
    members.push(root);
    let mut frontier = vec![root];
    let mut height = 0usize;
    while !frontier.is_empty() {
        let mut msgs: Vec<Message> = Vec::new();
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if in_mask(u) && depth[u] == usize::MAX {
                    msgs.push(Message::word(v, u));
                    // First announcement wins; later duplicates in the same round are
                    // still sent (and charged) but ignored, as in the real protocol.
                    if parent[u] == usize::MAX || !next.contains(&u) {
                        if !next.contains(&u) {
                            next.push(u);
                        }
                        parent[u] = parent[u].min(v).min(v);
                    }
                }
            }
        }
        if msgs.is_empty() {
            break;
        }
        meter
            .round(g, &msgs)
            .expect("BFS announcements fit in one word per edge");
        for &u in &next {
            depth[u] = height + 1;
            members.push(u);
        }
        height += 1;
        frontier = next;
    }
    // Fix parents: ensure each non-root member's parent is a member one level up.
    for &u in &members {
        if u == root {
            continue;
        }
        // Recompute the parent deterministically as the smallest-index neighbor one
        // level closer to the root.
        let p = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&w| in_mask(w) && depth[w] != usize::MAX && depth[w] + 1 == depth[u])
            .min()
            .expect("BFS member must have a parent candidate");
        parent[u] = p;
    }
    BfsTree {
        root,
        parent,
        depth,
        members,
        height,
    }
}

/// Convergecast an argmax: every tree member holds a key; the root learns the member
/// with the largest `(key, vertex)` pair. Costs `height` rounds and one message per
/// tree edge.
pub fn convergecast_argmax(
    g: &Graph,
    tree: &BfsTree,
    key: &[u64],
    meter: &mut RoundMeter,
) -> (usize, u64) {
    let mut best: Vec<(u64, usize)> = (0..g.n()).map(|v| (0, v)).collect();
    for &v in &tree.members {
        best[v] = (key[v], v);
    }
    // Process levels bottom-up; one round per level.
    for level in (1..=tree.height).rev() {
        let mut msgs = Vec::new();
        for &v in &tree.members {
            if tree.depth[v] == level {
                msgs.push(Message::word(v, tree.parent[v]));
            }
        }
        if !msgs.is_empty() {
            meter
                .round(g, &msgs)
                .expect("argmax convergecast sends one word per tree edge");
        } else {
            meter.charge_rounds(1);
        }
        for &v in &tree.members {
            if tree.depth[v] == level {
                let p = tree.parent[v];
                if best[v] > best[p] {
                    best[p] = best[v];
                }
            }
        }
    }
    let (k, v) = best[tree.root];
    (v, k)
}

/// Convergecast a sum of `u64` values to the root. Costs `height` rounds.
pub fn convergecast_sum(g: &Graph, tree: &BfsTree, values: &[u64], meter: &mut RoundMeter) -> u64 {
    let mut acc: Vec<u64> = vec![0; g.n()];
    for &v in &tree.members {
        acc[v] = values[v];
    }
    for level in (1..=tree.height).rev() {
        let mut msgs = Vec::new();
        for &v in &tree.members {
            if tree.depth[v] == level {
                msgs.push(Message::word(v, tree.parent[v]));
            }
        }
        if !msgs.is_empty() {
            meter
                .round(g, &msgs)
                .expect("sum convergecast sends one word per tree edge");
        } else {
            meter.charge_rounds(1);
        }
        for &v in &tree.members {
            if tree.depth[v] == level {
                acc[tree.parent[v]] += acc[v];
            }
        }
    }
    acc[tree.root]
}

/// Broadcasts `words` words from the root to every tree member. Costs
/// `height · words` rounds (each level forwards the payload one word per round).
pub fn broadcast_words(g: &Graph, tree: &BfsTree, words: u64, meter: &mut RoundMeter) {
    if tree.height == 0 || words == 0 {
        return;
    }
    // Pipelined broadcast: height + words - 1 rounds, ≤ one word per edge per round.
    let rounds = tree.height as u64 + words - 1;
    let tree_edges = (tree.len().saturating_sub(1)) as u64;
    meter.charge_rounds(rounds);
    meter.charge_messages(tree_edges * words);
    let _ = g;
}

/// Pipelined upcast: every tree member `v` holds `counts[v]` unit messages that must
/// all reach the root; each edge forwards at most one message per round. Returns the
/// number of messages received by the root; the exact round-by-round forwarding is
/// simulated, so the returned meter reflects the true pipelined cost
/// (≈ height + Σ counts through the most loaded root edge).
pub fn upcast_pipeline(g: &Graph, tree: &BfsTree, counts: &[usize], meter: &mut RoundMeter) -> u64 {
    let n = g.n();
    let mut pending: Vec<u64> = vec![0; n];
    let mut total_expected: u64 = 0;
    for &v in &tree.members {
        pending[v] = counts[v] as u64;
        total_expected += counts[v] as u64;
    }
    let mut at_root: u64 = pending[tree.root];
    pending[tree.root] = 0;
    // Iterate rounds until everything has drained to the root.
    let mut guard = 0u64;
    let guard_limit = 4 * (total_expected + tree.height as u64 + 1) + 16;
    while at_root < total_expected {
        let mut senders = 0u64;
        // Deeper vertices first so a message can move only one hop per round.
        let mut moved: Vec<(usize, u64)> = Vec::new();
        for &v in tree.members.iter().rev() {
            if v == tree.root {
                continue;
            }
            if pending[v] > 0 {
                moved.push((v, 1));
                senders += 1;
            }
        }
        if senders == 0 {
            break;
        }
        for &(v, k) in &moved {
            pending[v] -= k;
            let p = tree.parent[v];
            if p == tree.root {
                at_root += k;
            } else {
                pending[p] += k;
            }
        }
        meter.charge_rounds(1);
        meter.charge_messages(senders);
        guard += 1;
        if guard > guard_limit {
            break;
        }
    }
    at_root
}

/// Pipelined downcast: the root disseminates `counts[v]` unit messages to each tree
/// member `v`. By reversibility of the schedule this costs exactly as much as the
/// corresponding upcast; we simulate the upcast and charge its cost.
pub fn downcast_pipeline(
    g: &Graph,
    tree: &BfsTree,
    counts: &[usize],
    meter: &mut RoundMeter,
) -> u64 {
    upcast_pipeline(g, tree, counts, meter)
}

/// Elects the maximum-degree vertex of the masked region as leader, starting from an
/// arbitrary member `start`: builds a BFS tree, convergecasts the argmax of degrees,
/// and broadcasts the winner. Returns the leader and the BFS tree (rooted at
/// `start`).
pub fn elect_max_degree_leader(
    g: &Graph,
    mask: Option<&[bool]>,
    start: usize,
    meter: &mut RoundMeter,
) -> (usize, BfsTree) {
    let tree = build_bfs_tree(g, mask, start, meter);
    let degrees: Vec<u64> = (0..g.n()).map(|v| g.degree(v) as u64).collect();
    let (leader, _) = convergecast_argmax(g, &tree, &degrees, meter);
    broadcast_words(g, &tree, 1, meter);
    (leader, tree)
}

/// Cost (in rounds, charged on `meter`) of gathering the full topology of the masked
/// region to the root of `tree`: every member `v` upcasts `deg(v)` edge descriptors.
/// Returns the number of edge descriptors received by the root.
pub fn gather_topology(g: &Graph, tree: &BfsTree, meter: &mut RoundMeter) -> u64 {
    let counts: Vec<usize> = (0..g.n())
        .map(|v| if tree.contains(v) { g.degree(v) } else { 0 })
        .collect();
    upcast_pipeline(g, tree, &counts, meter)
}

/// Computes, for every vertex of the masked region, its BFS distance to the root as
/// seen by the tree (a convenience wrapper used by diameter estimation in the
/// decomposition validators).
pub fn bfs_levels(tree: &BfsTree) -> Vec<(usize, usize)> {
    tree.members.iter().map(|&v| (v, tree.depth[v])).collect()
}

/// Breadth-first traversal order of the masked region starting from `root`, without
/// any metering (a purely local helper used by leaders operating on gathered
/// topology).
pub fn local_bfs_order(g: &Graph, mask: Option<&[bool]>, root: usize) -> Vec<usize> {
    let in_mask = |v: usize| mask.is_none_or(|m| m[v]);
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[root] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if in_mask(u) && !seen[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;

    #[test]
    fn bfs_tree_costs_its_height() {
        let g = generators::path(10);
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, None, 0, &mut meter);
        assert_eq!(tree.height, 9);
        assert_eq!(meter.rounds(), 9);
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.depth[9], 9);
        assert_eq!(tree.parent[5], 4);
    }

    #[test]
    fn bfs_tree_respects_mask() {
        let g = generators::grid(4, 4);
        let mut mask = vec![false; 16];
        for m in mask.iter_mut().take(8) {
            *m = true;
        }
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, Some(&mask), 0, &mut meter);
        assert_eq!(tree.len(), 8);
        assert!(tree.members.iter().all(|&v| mask[v]));
    }

    #[test]
    fn argmax_finds_max_degree_vertex() {
        let g = generators::star(8);
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, None, 3, &mut meter);
        let degrees: Vec<u64> = (0..g.n()).map(|v| g.degree(v) as u64).collect();
        let (v, k) = convergecast_argmax(&g, &tree, &degrees, &mut meter);
        assert_eq!(v, 0);
        assert_eq!(k, 7);
    }

    #[test]
    fn sum_convergecast_adds_everything() {
        let g = generators::grid(3, 3);
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, None, 4, &mut meter);
        let values: Vec<u64> = (0..9).map(|v| v as u64).collect();
        let total = convergecast_sum(&g, &tree, &values, &mut meter);
        assert_eq!(total, 36);
    }

    #[test]
    fn upcast_pipeline_delivers_everything_and_counts_rounds() {
        let g = generators::path(5);
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, None, 0, &mut meter);
        let before = meter.rounds();
        let counts = vec![1usize; 5];
        let delivered = upcast_pipeline(&g, &tree, &counts, &mut meter);
        assert_eq!(delivered, 5);
        // The farthest message needs 4 hops; pipelining makes the total 4 + 3 = ...
        // at least the eccentricity and at least the number of non-root messages.
        let rounds = meter.rounds() - before;
        assert!(rounds >= 4);
        assert!(rounds <= 8);
    }

    #[test]
    fn upcast_on_star_is_fast() {
        let g = generators::star(9);
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, None, 0, &mut meter);
        let before = meter.rounds();
        let counts = vec![1usize; 9];
        let delivered = upcast_pipeline(&g, &tree, &counts, &mut meter);
        assert_eq!(delivered, 9);
        assert_eq!(meter.rounds() - before, 1);
    }

    #[test]
    fn leader_election_returns_max_degree_vertex() {
        let g = generators::wheel(12);
        let mut meter = RoundMeter::new();
        let (leader, tree) = elect_max_degree_leader(&g, None, 5, &mut meter);
        assert_eq!(leader, 0);
        assert_eq!(tree.root, 5);
        assert!(meter.rounds() > 0);
    }

    #[test]
    fn gather_topology_counts_edge_descriptors() {
        let g = generators::cycle(6);
        let mut meter = RoundMeter::new();
        let tree = build_bfs_tree(&g, None, 0, &mut meter);
        let received = gather_topology(&g, &tree, &mut meter);
        assert_eq!(received, 2 * g.m() as u64);
    }
}
