//! Round and bandwidth accounting for CONGEST simulations.

use std::collections::HashMap;
use std::fmt;

use mfd_graph::Graph;

/// A single directed message submitted in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending vertex.
    pub src: usize,
    /// Receiving vertex (must be a neighbor of `src`).
    pub dst: usize,
    /// Size of the message in 64-bit words. One CONGEST message of O(log n) bits is
    /// one word for all graph sizes this library handles.
    pub words: usize,
}

impl Message {
    /// Convenience constructor for a one-word message.
    pub fn word(src: usize, dst: usize) -> Self {
        Message { src, dst, words: 1 }
    }
}

/// Errors raised when a submitted round violates the CONGEST model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A message was submitted along a pair of vertices that is not an edge.
    NotAnEdge { src: usize, dst: usize },
    /// The total number of words sent over a directed edge in one round exceeded the
    /// per-round capacity.
    BandwidthExceeded {
        src: usize,
        dst: usize,
        words: usize,
        capacity: usize,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NotAnEdge { src, dst } => {
                write!(f, "message submitted along non-edge ({src}, {dst})")
            }
            CongestError::BandwidthExceeded {
                src,
                dst,
                words,
                capacity,
            } => write!(
                f,
                "bandwidth exceeded on edge ({src}, {dst}): {words} words > capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for CongestError {}

/// Statistics of one named phase of an algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Phase name.
    pub name: String,
    /// Rounds spent in the phase.
    pub rounds: u64,
    /// Messages sent in the phase.
    pub messages: u64,
}

/// A plain-data capture of a [`RoundMeter`]'s complete accumulator state.
///
/// Every field a meter owns, exposed for checkpoint/resume: `mfd-replay`
/// encodes a `MeterParts` into its journal and
/// [`RoundMeter::from_parts`] rebuilds a meter that continues accounting
/// exactly where the captured one stopped — `to_parts` → `from_parts` is
/// the identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeterParts {
    /// Total rounds accumulated.
    pub rounds: u64,
    /// Total messages accumulated.
    pub messages: u64,
    /// Per-edge per-round capacity in words.
    pub capacity_words: usize,
    /// Largest per-edge load (in words) observed in any single round.
    pub max_words_on_edge: usize,
    /// Completed phase records.
    pub phases: Vec<PhaseRecord>,
    /// An open phase, if one is active: `(name, rounds, messages)` at
    /// [`RoundMeter::start_phase`] time.
    pub phase_start: Option<(String, u64, u64)>,
}

/// The accounting object for a CONGEST execution.
///
/// A `RoundMeter` tracks the number of synchronous rounds and messages used by an
/// algorithm (or a piece of one). Sub-computations that run **in parallel** on
/// edge-disjoint parts of the network are metered separately and folded in with
/// [`RoundMeter::merge_parallel`] (max of rounds); **sequential** composition uses
/// [`RoundMeter::merge_sequential`] (sum of rounds).
///
/// # Example
///
/// ```
/// use mfd_congest::{Message, RoundMeter};
/// use mfd_graph::generators;
///
/// let g = generators::path(4);
/// let mut meter = RoundMeter::new();
/// meter.round(&g, &[Message::word(0, 1), Message::word(2, 1)]).unwrap();
/// assert_eq!(meter.rounds(), 1);
/// assert_eq!(meter.messages(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RoundMeter {
    rounds: u64,
    messages: u64,
    capacity_words: usize,
    max_words_on_edge: usize,
    phases: Vec<PhaseRecord>,
    phase_start: Option<(String, u64, u64)>,
}

impl Default for RoundMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundMeter {
    /// Default per-edge, per-direction, per-round bandwidth in 64-bit words.
    /// One word comfortably encodes one O(log n)-bit CONGEST message for any graph
    /// this library can hold in memory.
    pub const DEFAULT_CAPACITY_WORDS: usize = 1;

    /// Creates a meter with the default bandwidth.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY_WORDS)
    }

    /// Creates a meter with a custom per-edge per-round word capacity.
    pub fn with_capacity(capacity_words: usize) -> Self {
        RoundMeter {
            rounds: 0,
            messages: 0,
            capacity_words: capacity_words.max(1),
            max_words_on_edge: 0,
            phases: Vec::new(),
            phase_start: None,
        }
    }

    /// Total rounds accumulated.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total messages accumulated.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Per-edge per-round capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }

    /// Largest per-edge load (in words) observed in any single round.
    pub fn max_words_on_edge(&self) -> usize {
        self.max_words_on_edge
    }

    /// Records one synchronous round in which the given messages are sent.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NotAnEdge`] if a message does not follow an edge of
    /// `g`, and [`CongestError::BandwidthExceeded`] if the total words over a directed
    /// edge exceed the capacity. The round is counted even in the error case so that
    /// partial accounting remains monotone.
    pub fn round(&mut self, g: &Graph, msgs: &[Message]) -> Result<(), CongestError> {
        self.rounds += 1;
        self.messages += msgs.len() as u64;
        let (max_on_edge, verdict) = Self::validate(g, msgs, self.capacity_words);
        self.max_words_on_edge = self.max_words_on_edge.max(max_on_edge);
        verdict
    }

    /// Checks whether one round's message set is admissible **without recording
    /// anything** — the verdict [`RoundMeter::round`] would return for the same
    /// input.
    ///
    /// This is the validation hook the `mfd-runtime` executor (and its
    /// property tests) build on: an executed round is committed only if this
    /// check accepts it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoundMeter::round`].
    pub fn check_round(&self, g: &Graph, msgs: &[Message]) -> Result<(), CongestError> {
        Self::validate(g, msgs, self.capacity_words).1
    }

    /// Shared validation: returns the largest per-edge load observed (over the
    /// prefix of edges inspected before any error) and the verdict.
    fn validate(
        g: &Graph,
        msgs: &[Message],
        capacity_words: usize,
    ) -> (usize, Result<(), CongestError>) {
        let mut per_edge: HashMap<(usize, usize), usize> = HashMap::new();
        for m in msgs {
            if !g.has_edge(m.src, m.dst) {
                return (
                    0,
                    Err(CongestError::NotAnEdge {
                        src: m.src,
                        dst: m.dst,
                    }),
                );
            }
            *per_edge.entry((m.src, m.dst)).or_insert(0) += m.words;
        }
        let mut max_on_edge = 0;
        for (&(src, dst), &words) in &per_edge {
            max_on_edge = max_on_edge.max(words);
            if words > capacity_words {
                return (
                    max_on_edge,
                    Err(CongestError::BandwidthExceeded {
                        src,
                        dst,
                        words,
                        capacity: capacity_words,
                    }),
                );
            }
        }
        (max_on_edge, Ok(()))
    }

    /// Records one synchronous round whose messages were already validated
    /// by the submitting engine: `messages` delivered, `max_words_on_edge`
    /// the largest per-directed-edge word load the engine observed.
    ///
    /// This is the flat-storage counterpart of [`RoundMeter::round`] for
    /// engines that cannot (or need not) hand over a [`Graph`]: the sharded
    /// executor validates edge membership at send time (sorted-CSR binary
    /// search) and accounts per-edge loads exactly at commit time — every
    /// directed edge has a unique source vertex, so per-source accounting
    /// covers each edge once. The accumulated totals are identical to what
    /// [`RoundMeter::round`] would have recorded for the same round.
    pub fn seal_validated_round(&mut self, messages: u64, max_words_on_edge: usize) {
        self.rounds += 1;
        self.messages += messages;
        self.max_words_on_edge = self.max_words_on_edge.max(max_words_on_edge);
    }

    /// Records `r` rounds without individual message verification.
    ///
    /// Used for sub-routines whose per-round message pattern is provably within
    /// capacity (e.g. broadcasting one word down a BFS tree) or when applying one of
    /// the paper's explicit congestion factors (e.g. the ×c overhead for overlapping
    /// clusters).
    pub fn charge_rounds(&mut self, r: u64) {
        self.rounds += r;
    }

    /// Records `m` messages without per-edge verification; companion of
    /// [`RoundMeter::charge_rounds`].
    pub fn charge_messages(&mut self, m: u64) {
        self.messages += m;
    }

    /// Folds in meters of sub-computations that ran **in parallel** on edge-disjoint
    /// parts of the graph: rounds increase by the maximum, messages by the sum.
    pub fn merge_parallel<'a>(&mut self, meters: impl IntoIterator<Item = &'a RoundMeter>) {
        let mut max_rounds = 0;
        for m in meters {
            max_rounds = max_rounds.max(m.rounds);
            self.messages += m.messages;
            self.max_words_on_edge = self.max_words_on_edge.max(m.max_words_on_edge);
        }
        self.rounds += max_rounds;
    }

    /// Folds in a meter of a sub-computation that ran **after** everything recorded so
    /// far: both rounds and messages add.
    pub fn merge_sequential(&mut self, meter: &RoundMeter) {
        self.rounds += meter.rounds;
        self.messages += meter.messages;
        self.max_words_on_edge = self.max_words_on_edge.max(meter.max_words_on_edge);
    }

    /// Starts a named phase; the next [`RoundMeter::end_phase`] records the rounds and
    /// messages spent since this call.
    pub fn start_phase(&mut self, name: &str) {
        self.phase_start = Some((name.to_string(), self.rounds, self.messages));
    }

    /// Ends the current phase (no-op if none is active).
    pub fn end_phase(&mut self) {
        if let Some((name, r0, m0)) = self.phase_start.take() {
            self.phases.push(PhaseRecord {
                name,
                rounds: self.rounds - r0,
                messages: self.messages - m0,
            });
        }
    }

    /// Phase records accumulated so far.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Captures the meter's complete state as plain data (see
    /// [`MeterParts`]).
    pub fn to_parts(&self) -> MeterParts {
        MeterParts {
            rounds: self.rounds,
            messages: self.messages,
            capacity_words: self.capacity_words,
            max_words_on_edge: self.max_words_on_edge,
            phases: self.phases.clone(),
            phase_start: self.phase_start.clone(),
        }
    }

    /// Rebuilds a meter from captured parts; the exact inverse of
    /// [`RoundMeter::to_parts`]. The capacity clamp of
    /// [`RoundMeter::with_capacity`] is *not* re-applied: parts round-trip
    /// verbatim.
    pub fn from_parts(parts: MeterParts) -> Self {
        RoundMeter {
            rounds: parts.rounds,
            messages: parts.messages,
            capacity_words: parts.capacity_words,
            max_words_on_edge: parts.max_words_on_edge,
            phases: parts.phases,
            phase_start: parts.phase_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;

    #[test]
    fn round_counts_and_validates_edges() {
        let g = generators::cycle(4);
        let mut meter = RoundMeter::new();
        meter
            .round(&g, &[Message::word(0, 1), Message::word(1, 2)])
            .unwrap();
        assert_eq!(meter.rounds(), 1);
        assert_eq!(meter.messages(), 2);
        let err = meter.round(&g, &[Message::word(0, 2)]).unwrap_err();
        assert_eq!(err, CongestError::NotAnEdge { src: 0, dst: 2 });
    }

    #[test]
    fn bandwidth_is_enforced_per_direction() {
        let g = generators::path(3);
        let mut meter = RoundMeter::new();
        // Two one-word messages over the same directed edge exceed a 1-word capacity.
        let err = meter
            .round(&g, &[Message::word(0, 1), Message::word(0, 1)])
            .unwrap_err();
        assert!(matches!(err, CongestError::BandwidthExceeded { .. }));
        // Opposite directions are fine.
        meter
            .round(&g, &[Message::word(0, 1), Message::word(1, 0)])
            .unwrap();
    }

    #[test]
    fn larger_capacity_allows_more_words() {
        let g = generators::path(3);
        let mut meter = RoundMeter::with_capacity(4);
        meter
            .round(
                &g,
                &[Message {
                    src: 0,
                    dst: 1,
                    words: 4,
                }],
            )
            .unwrap();
        assert_eq!(meter.max_words_on_edge(), 4);
    }

    #[test]
    fn parallel_merge_takes_max_rounds() {
        let mut a = RoundMeter::new();
        a.charge_rounds(5);
        a.charge_messages(10);
        let mut b = RoundMeter::new();
        b.charge_rounds(3);
        b.charge_messages(7);
        let mut total = RoundMeter::new();
        total.merge_parallel([&a, &b]);
        assert_eq!(total.rounds(), 5);
        assert_eq!(total.messages(), 17);
        total.merge_sequential(&b);
        assert_eq!(total.rounds(), 8);
    }

    #[test]
    fn zero_word_messages_are_counted_but_use_no_bandwidth() {
        let g = generators::path(3);
        let mut meter = RoundMeter::new();
        let zero = Message {
            src: 0,
            dst: 1,
            words: 0,
        };
        // Arbitrarily many zero-word messages on one edge stay within any capacity.
        meter.round(&g, &[zero, zero, zero]).unwrap();
        assert_eq!(meter.rounds(), 1);
        assert_eq!(meter.messages(), 3);
        assert_eq!(meter.max_words_on_edge(), 0);
        // But a zero-word message along a non-edge is still a model violation.
        let bad = Message {
            src: 0,
            dst: 2,
            words: 0,
        };
        assert_eq!(
            meter.round(&g, &[bad]).unwrap_err(),
            CongestError::NotAnEdge { src: 0, dst: 2 }
        );
    }

    #[test]
    fn exact_capacity_sends_are_admissible() {
        let g = generators::path(3);
        let mut meter = RoundMeter::with_capacity(3);
        // Exactly at capacity: three one-word messages over one directed edge.
        meter
            .round(
                &g,
                &[
                    Message::word(0, 1),
                    Message::word(0, 1),
                    Message::word(0, 1),
                ],
            )
            .unwrap();
        assert_eq!(meter.max_words_on_edge(), 3);
        // One more word over the same edge is one too many.
        let err = meter
            .round(
                &g,
                &[
                    Message::word(0, 1),
                    Message::word(0, 1),
                    Message::word(0, 1),
                    Message::word(0, 1),
                ],
            )
            .unwrap_err();
        assert_eq!(
            err,
            CongestError::BandwidthExceeded {
                src: 0,
                dst: 1,
                words: 4,
                capacity: 3,
            }
        );
    }

    #[test]
    fn merge_identities() {
        // Parallel merge with an empty iterator is the identity.
        let mut meter = RoundMeter::new();
        meter.charge_rounds(4);
        meter.charge_messages(9);
        meter.merge_parallel(std::iter::empty());
        assert_eq!(meter.rounds(), 4);
        assert_eq!(meter.messages(), 9);
        // Merging a fresh meter changes nothing under either composition.
        let fresh = RoundMeter::new();
        meter.merge_parallel([&fresh]);
        meter.merge_sequential(&fresh);
        assert_eq!(meter.rounds(), 4);
        assert_eq!(meter.messages(), 9);
        // Sequential merge after parallel merge of a single meter equals
        // applying that meter twice sequentially.
        let mut single = RoundMeter::new();
        single.charge_rounds(2);
        single.charge_messages(5);
        let mut a = RoundMeter::new();
        a.merge_parallel([&single]);
        a.merge_sequential(&single);
        assert_eq!(a.rounds(), 4);
        assert_eq!(a.messages(), 10);
    }

    #[test]
    fn check_round_matches_round_verdict_without_recording() {
        let g = generators::cycle(5);
        let meter = RoundMeter::new();
        let good = [Message::word(0, 1), Message::word(2, 3)];
        let non_edge = [Message::word(0, 2)];
        let overload = [Message::word(0, 1), Message::word(0, 1)];
        assert!(meter.check_round(&g, &good).is_ok());
        assert!(matches!(
            meter.check_round(&g, &non_edge),
            Err(CongestError::NotAnEdge { .. })
        ));
        assert!(matches!(
            meter.check_round(&g, &overload),
            Err(CongestError::BandwidthExceeded { .. })
        ));
        // check_round records nothing.
        assert_eq!(meter.rounds(), 0);
        assert_eq!(meter.messages(), 0);
        assert_eq!(meter.max_words_on_edge(), 0);
        // And agrees with what round() returns on the same inputs.
        for msgs in [&good[..], &non_edge[..], &overload[..]] {
            let verdict = meter.check_round(&g, msgs);
            let mut recorder = RoundMeter::new();
            assert_eq!(verdict, recorder.round(&g, msgs));
        }
    }

    #[test]
    fn parts_round_trip_is_the_identity() {
        let g = generators::path(4);
        let mut meter = RoundMeter::with_capacity(3);
        meter.start_phase("first");
        meter
            .round(&g, &[Message::word(0, 1), Message::word(1, 2)])
            .unwrap();
        meter.end_phase();
        meter.start_phase("open"); // left open: phase_start must survive too
        meter.charge_rounds(2);
        meter.charge_messages(5);

        let parts = meter.to_parts();
        let mut restored = RoundMeter::from_parts(parts.clone());
        assert_eq!(restored.to_parts(), parts);

        // The restored meter continues accounting exactly where the
        // original stopped — including closing the phase left open.
        meter.round(&g, &[Message::word(2, 3)]).unwrap();
        meter.end_phase();
        restored.round(&g, &[Message::word(2, 3)]).unwrap();
        restored.end_phase();
        assert_eq!(restored.rounds(), meter.rounds());
        assert_eq!(restored.messages(), meter.messages());
        assert_eq!(restored.max_words_on_edge(), meter.max_words_on_edge());
        assert_eq!(restored.phases(), meter.phases());
    }

    #[test]
    fn phases_record_deltas() {
        let g = generators::path(4);
        let mut meter = RoundMeter::new();
        meter.start_phase("first");
        meter.round(&g, &[Message::word(0, 1)]).unwrap();
        meter.end_phase();
        meter.start_phase("second");
        meter.charge_rounds(3);
        meter.end_phase();
        assert_eq!(meter.phases().len(), 2);
        assert_eq!(meter.phases()[0].rounds, 1);
        assert_eq!(meter.phases()[1].rounds, 3);
        assert_eq!(meter.phases()[1].messages, 0);
    }
}
