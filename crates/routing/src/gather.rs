//! A uniform interface over the three information-gathering strategies.
//!
//! The (ε, D, T)-decomposition needs, per cluster, a routing algorithm `A` that sends
//! `deg(v)` messages from every vertex `v` to the cluster leader (and back). This
//! module exposes the three ways this library can realize `A`:
//!
//! * [`GatherStrategy::TreePipeline`] — pipelined upcast along a BFS tree of the
//!   cluster. Always delivers everything; costs `O(depth + vol(S)/deg_tree(root))`
//!   rounds, which is fine for small or low-volume clusters and is the strategy that
//!   the O(1/ε)-diameter clusters produced by Theorem 1.1 end up using most often.
//! * [`GatherStrategy::LoadBalance`] — Lemma 2.2 (expander-split load balancing).
//! * [`GatherStrategy::WalkSchedule`] — Lemmas 2.5/2.6 (derandomized random-walk
//!   schedules computed by a topology-aware leader).

use mfd_congest::{primitives, RoundMeter};
use mfd_graph::Graph;

use crate::load_balance::{load_balance_gather, LoadBalanceParams};
use crate::walks::{execute_walk_gather, plan_walk_schedule, WalkParams};

/// Strategy used to gather `deg(v)` messages from every cluster vertex to the leader.
#[derive(Debug, Clone, Default)]
pub enum GatherStrategy {
    /// Pipelined upcast along a BFS tree rooted at the leader.
    #[default]
    TreePipeline,
    /// Expander-split load balancing (Lemma 2.2).
    LoadBalance(LoadBalanceParams),
    /// Derandomized random-walk schedule (Lemma 2.5).
    WalkSchedule(WalkParams),
}

/// Report of one gather execution.
#[derive(Debug, Clone)]
pub struct GatherReport {
    /// Rounds charged on the meter.
    pub rounds: u64,
    /// Fraction of the `2|E(S)|` messages delivered to the leader.
    pub delivered_fraction: f64,
    /// Number of delivered messages per cluster vertex.
    pub per_vertex_delivered: Vec<usize>,
    /// Total number of messages.
    pub total_messages: usize,
    /// Human-readable name of the strategy used.
    pub strategy: &'static str,
}

/// Gathers `deg(v)` messages from every vertex of `cluster` to `leader`, tolerating a
/// failure fraction `f`, with the chosen strategy. Rounds are charged on `meter`.
///
/// # Panics
///
/// Panics if `leader` is out of range.
pub fn gather_to_leader(
    cluster: &Graph,
    leader: usize,
    f: f64,
    strategy: &GatherStrategy,
    meter: &mut RoundMeter,
) -> GatherReport {
    assert!(leader < cluster.n().max(1), "leader out of range");
    match strategy {
        GatherStrategy::TreePipeline => tree_gather(cluster, leader, meter),
        GatherStrategy::LoadBalance(params) => {
            let report = load_balance_gather(cluster, leader, f, params, meter);
            GatherReport {
                rounds: report.rounds,
                delivered_fraction: report.delivered_fraction,
                per_vertex_delivered: report.per_vertex_delivered,
                total_messages: report.total_messages,
                strategy: "load-balance",
            }
        }
        GatherStrategy::WalkSchedule(params) => {
            let plan = plan_walk_schedule(cluster, leader, f, params);
            if plan.good_fraction < 1.0 - f {
                // The cluster is not a good enough expander for the walk schedule to
                // meet the failure budget (planning is free local computation at the
                // leader, so it can tell); fall back to the always-correct tree
                // pipeline, exactly as the decomposition would pick a different
                // routing scheme for such clusters.
                let mut report = tree_gather(cluster, leader, meter);
                report.strategy = "walk-schedule(tree-fallback)";
                return report;
            }
            let report = execute_walk_gather(cluster, &plan, params, meter);
            GatherReport {
                rounds: report.rounds,
                delivered_fraction: report.delivered_fraction,
                per_vertex_delivered: report.per_vertex_delivered,
                total_messages: report.total_messages,
                strategy: "walk-schedule",
            }
        }
    }
}

/// The BFS-tree pipelined gather: always delivers every message.
pub fn tree_gather(cluster: &Graph, leader: usize, meter: &mut RoundMeter) -> GatherReport {
    let n = cluster.n();
    let total_messages = 2 * cluster.m();
    if n == 0 || cluster.m() == 0 {
        return GatherReport {
            rounds: 0,
            delivered_fraction: 1.0,
            per_vertex_delivered: vec![0; n],
            total_messages,
            strategy: "tree-pipeline",
        };
    }
    let rounds_before = meter.rounds();
    let tree = primitives::build_bfs_tree(cluster, None, leader, meter);
    let counts: Vec<usize> = (0..n)
        .map(|v| {
            if tree.contains(v) {
                cluster.degree(v)
            } else {
                0
            }
        })
        .collect();
    primitives::upcast_pipeline(cluster, &tree, &counts, meter);
    // The reverse (leader-to-vertices) distribution costs the same by reversibility.
    primitives::downcast_pipeline(cluster, &tree, &counts, meter);
    // Control cost of the real protocol (executed by
    // [`crate::programs::TreeGatherProgram`]): one adoption round joining the
    // wave, an in-band termination-detection tail of at most `height` rounds
    // (the done flags ride the pipeline one level per round), and the leader's
    // echo handshake. Charging it keeps this metered bound an upper bound on
    // the executed round count, which the differential tests pin.
    meter.charge_rounds(tree.height as u64 + 2);
    let per_vertex_delivered: Vec<usize> = counts.clone();
    let delivered: usize = counts.iter().sum();
    GatherReport {
        rounds: meter.rounds() - rounds_before,
        delivered_fraction: if total_messages == 0 {
            1.0
        } else {
            delivered as f64 / total_messages as f64
        },
        per_vertex_delivered,
        total_messages,
        strategy: "tree-pipeline",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;

    #[test]
    fn tree_gather_delivers_everything() {
        let g = generators::grid(4, 4);
        let mut meter = RoundMeter::new();
        let report = gather_to_leader(&g, 0, 0.1, &GatherStrategy::TreePipeline, &mut meter);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
        assert_eq!(report.total_messages, 2 * g.m());
        assert!(report.rounds > 0);
        assert_eq!(report.strategy, "tree-pipeline");
    }

    #[test]
    fn strategies_report_consistent_totals() {
        let g = generators::complete(7);
        for strategy in [
            GatherStrategy::TreePipeline,
            GatherStrategy::LoadBalance(LoadBalanceParams::default()),
            GatherStrategy::WalkSchedule(WalkParams::default()),
        ] {
            let mut meter = RoundMeter::new();
            let report = gather_to_leader(&g, 0, 0.2, &strategy, &mut meter);
            assert_eq!(report.total_messages, 2 * g.m());
            assert!(report.delivered_fraction >= 0.8, "{}", report.strategy);
            assert_eq!(report.rounds, meter.rounds());
        }
    }

    #[test]
    fn tree_gather_cost_scales_with_cluster_volume_over_root_degree() {
        // On a star rooted at the hub, everything arrives in O(1) pipelined rounds per
        // message of the leaves; on a path it takes Ω(n) rounds.
        let star = generators::star(50);
        let path = generators::path(50);
        let mut m1 = RoundMeter::new();
        let mut m2 = RoundMeter::new();
        let r1 = tree_gather(&star, 0, &mut m1);
        let r2 = tree_gather(&path, 0, &mut m2);
        assert!(r1.rounds < r2.rounds);
    }

    #[test]
    fn empty_cluster_gather_is_free() {
        let g = Graph::new(4);
        let mut meter = RoundMeter::new();
        let report = gather_to_leader(&g, 0, 0.1, &GatherStrategy::TreePipeline, &mut meter);
        assert_eq!(report.rounds, 0);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    }
}
