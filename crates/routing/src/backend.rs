//! Interchangeable gather backends: *charge* the paper's round bounds or
//! *spend* real executed rounds, behind one interface.
//!
//! The (ε, D, T)-decomposition needs one in-cluster gather per construction
//! phase and one execution of the routing algorithm `A`. Historically those
//! were always **metered** — [`crate::gather::gather_to_leader`] simulates
//! the communication centrally and charges rounds on a
//! [`mfd_congest::RoundMeter`]. Since the §2 strategies exist as real
//! [`mfd_runtime::NodeProgram`]s, the decomposition can instead **execute**
//! every gather. [`GatherBackend`] abstracts over the two modes so the
//! decomposition layer (`mfd_core::edt`) is generic in which one it runs:
//!
//! * [`Metered`] — today's charged upper bounds. Cheap, centralized, and the
//!   *oracle*: every executed round count is validated against it.
//! * [`Executed`] — program-level strategy selection
//!   ([`crate::programs::select_strategy_program`]: tree pipeline, Lemma 2.2
//!   balancer with conductance routing, walk schedule with tree fallback)
//!   run for real on the synchronous executor (batched across clusters via
//!   [`mfd_runtime::run_on_clusters`]) or on the `mfd-sim` discrete-event
//!   engine. Rounds and messages come from the engines' meters; with
//!   [`Executed::check_charge`] (on by default) every cluster's executed
//!   round count is asserted `≤` the metered charge of the same effective
//!   strategy, so the charged path is demoted from product to cross-checked
//!   upper bound.
//!
//! Both backends report through the metered vocabulary
//! ([`crate::gather::GatherReport`]) and fold sub-meters with the paper's
//! parallel-composition rule, so swapping one for the other changes *how*
//! rounds are obtained, never how they compose.

use mfd_congest::RoundMeter;
use mfd_graph::Graph;
use mfd_runtime::{run_on_clusters, ExecutorConfig};
use mfd_sim::{SimConfig, Simulator};
use mfd_trace::{Event, TraceSink};

use crate::gather::{gather_to_leader, tree_gather, GatherReport, GatherStrategy};
use crate::load_balance::load_balance_gather_with_plan;
use crate::programs::{
    select_strategy_program_with_plans, GatherProgram, SelectedGather, SelectionPlans,
};
use crate::walks::execute_walk_gather;

/// One in-cluster gather to run: the cluster's members (original vertex ids
/// of the ambient graph) and its leader (also an original id, a member).
#[derive(Debug, Clone)]
pub struct GatherJob {
    /// Cluster members, original vertex ids.
    pub members: Vec<usize>,
    /// Leader vertex, an element of `members`.
    pub leader: usize,
}

/// A way to obtain the rounds of the decomposition's in-cluster gathers:
/// charge them ([`Metered`]) or execute them ([`Executed`]).
pub trait GatherBackend: Sync {
    /// Backend name for reports (`"metered"`, `"executed"`, …).
    fn name(&self) -> &'static str;

    /// Gathers `deg(v)` messages from every vertex of `cluster` to `leader`
    /// with `strategy`, accounting rounds and messages on `meter`.
    ///
    /// # Panics
    ///
    /// Panics if `leader` is out of range, or (executed backends) if the
    /// selected program violates the CONGEST model or starves against its
    /// round budget.
    fn gather(
        &self,
        cluster: &Graph,
        leader: usize,
        f: f64,
        strategy: &GatherStrategy,
        meter: &mut RoundMeter,
    ) -> GatherReport;

    /// Runs one gather per job — clusters are vertex-disjoint, so the
    /// sub-meters fold into `meter` with the parallel-composition rule
    /// (rounds by max, messages by sum). Returns one report per job, in
    /// order.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GatherBackend::gather`], plus a leader outside
    /// its members list.
    fn gather_all(
        &self,
        g: &Graph,
        jobs: &[GatherJob],
        f: f64,
        strategy: &GatherStrategy,
        meter: &mut RoundMeter,
    ) -> Vec<GatherReport> {
        self.gather_all_traced(g, jobs, f, strategy, meter, &mut ())
    }

    /// [`GatherBackend::gather_all`] with per-cluster observability: emits
    /// one [`Event::ClusterRun`] per job (in job order) into `sink` with
    /// that cluster's own rounds and messages — the per-cluster costs the
    /// parallel fold otherwise collapses into a single max/sum.
    ///
    /// `&mut ()` is the no-op sink; `gather_all` is exactly that call.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GatherBackend::gather_all`].
    fn gather_all_traced(
        &self,
        g: &Graph,
        jobs: &[GatherJob],
        f: f64,
        strategy: &GatherStrategy,
        meter: &mut RoundMeter,
        sink: &mut dyn TraceSink,
    ) -> Vec<GatherReport> {
        gather_all_sequential(self, g, jobs, f, strategy, meter, sink)
    }
}

/// The shared per-job loop behind [`GatherBackend::gather_all`]: induce each
/// cluster, gather on a fresh sub-meter, fold the sub-meters in parallel.
fn gather_all_sequential<B: GatherBackend + ?Sized>(
    backend: &B,
    g: &Graph,
    jobs: &[GatherJob],
    f: f64,
    strategy: &GatherStrategy,
    meter: &mut RoundMeter,
    sink: &mut dyn TraceSink,
) -> Vec<GatherReport> {
    let mut reports = Vec::with_capacity(jobs.len());
    let mut sub_meters: Vec<RoundMeter> = Vec::with_capacity(jobs.len());
    for (idx, job) in jobs.iter().enumerate() {
        let (sub, map) = g.induced_subgraph(&job.members);
        let leader_local = local_leader(&map, job.leader);
        let mut sm = RoundMeter::new();
        reports.push(backend.gather(&sub, leader_local, f, strategy, &mut sm));
        sink.event(&Event::ClusterRun {
            cluster: idx,
            rounds: sm.rounds(),
            messages: sm.messages(),
        });
        sub_meters.push(sm);
    }
    meter.merge_parallel(sub_meters.iter());
    reports
}

fn local_leader(map: &[usize], leader: usize) -> usize {
    map.iter()
        .position(|&v| v == leader)
        .expect("leader belongs to its cluster")
}

/// The charged backend: [`crate::gather::gather_to_leader`], exactly as the
/// decomposition always accounted its gathers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metered;

impl GatherBackend for Metered {
    fn name(&self) -> &'static str {
        "metered"
    }

    fn gather(
        &self,
        cluster: &Graph,
        leader: usize,
        f: f64,
        strategy: &GatherStrategy,
        meter: &mut RoundMeter,
    ) -> GatherReport {
        gather_to_leader(cluster, leader, f, strategy, meter)
    }
}

/// The engine an [`Executed`] backend runs its programs on.
#[derive(Debug, Clone)]
pub enum GatherEngine {
    /// The synchronous `mfd-runtime` executor; cluster batches run in
    /// parallel through [`mfd_runtime::run_on_clusters`].
    Executor(ExecutorConfig),
    /// The `mfd-sim` discrete-event engine (any latency model; the round
    /// accounting is latency-invariant).
    Sim(SimConfig),
}

/// The executed backend: strategy selection at the program level, real
/// engine runs, meter numbers from the engines.
#[derive(Debug, Clone)]
pub struct Executed {
    /// Engine to run the selected programs on.
    pub engine: GatherEngine,
    /// Assert, per cluster, that the executed round count stays within the
    /// metered charge of the same effective strategy (the differential
    /// contract; on by default).
    pub check_charge: bool,
}

impl Default for Executed {
    fn default() -> Self {
        Executed::executor(ExecutorConfig::default())
    }
}

impl Executed {
    /// Executed backend on the synchronous executor.
    pub fn executor(config: ExecutorConfig) -> Self {
        Executed {
            engine: GatherEngine::Executor(config),
            check_charge: true,
        }
    }

    /// Executed backend on the `mfd-sim` engine.
    pub fn sim(config: SimConfig) -> Self {
        Executed {
            engine: GatherEngine::Sim(config),
            check_charge: true,
        }
    }

    /// Disables the per-cluster executed-within-charge assertion.
    pub fn without_charge_check(mut self) -> Self {
        self.check_charge = false;
        self
    }

    /// The metered charge of the *effective* strategy the selection picked —
    /// the oracle the executed rounds are validated against. When the
    /// selection overrode the strategy (conductance-routed the balancer to
    /// the tree, or fell back from an unplannable walk schedule), the oracle
    /// is the metered cost of the program that actually ran. The selection's
    /// own plans are reused, so the oracle never replans.
    fn charged_rounds(
        cluster: &Graph,
        leader: usize,
        f: f64,
        strategy: &GatherStrategy,
        selected: &SelectedGather,
        plans: &SelectionPlans,
    ) -> u64 {
        let mut oracle = RoundMeter::new();
        match selected {
            SelectedGather::Tree(_) | SelectedGather::WalkFallbackTree(_) => {
                tree_gather(cluster, leader, &mut oracle);
            }
            SelectedGather::LoadBalance(_) => {
                let plan = plans
                    .load_balance
                    .as_ref()
                    .expect("balancer selection keeps its plan");
                load_balance_gather_with_plan(cluster, leader, f, plan, &mut oracle);
            }
            SelectedGather::Walk(_) => {
                let GatherStrategy::WalkSchedule(params) = strategy else {
                    unreachable!("the walk schedule is only selected for its own strategy");
                };
                let plan = plans.walk.as_ref().expect("walk selection keeps its plan");
                execute_walk_gather(cluster, plan, params, &mut oracle);
            }
        }
        oracle.rounds()
    }

    /// Runs one already-selected program on the configured engine, returning
    /// its report and the engine's meter.
    fn run_selected(
        &self,
        cluster: &Graph,
        selected: &SelectedGather,
    ) -> (GatherReport, RoundMeter) {
        let (states, rounds, messages, engine_meter) = match &self.engine {
            GatherEngine::Executor(config) => {
                let run = mfd_runtime::Executor::new(config.clone())
                    .run(cluster, selected)
                    .expect("selected gather program is model-compliant");
                (run.states, run.rounds, run.messages, run.meter)
            }
            GatherEngine::Sim(config) => {
                let run = Simulator::new(config.clone())
                    .run(cluster, selected)
                    .expect("selected gather program is model-compliant");
                (run.states, run.rounds, run.messages, run.meter)
            }
        };
        let executed = selected.executed_report(&states, rounds, messages);
        (executed.into(), engine_meter)
    }

    /// Validates the executed rounds against the metered oracle.
    #[allow(clippy::too_many_arguments)]
    fn check(
        &self,
        cluster: &Graph,
        leader: usize,
        f: f64,
        strategy: &GatherStrategy,
        selected: &SelectedGather,
        plans: &SelectionPlans,
        executed_rounds: u64,
    ) {
        if !self.check_charge {
            return;
        }
        let charged = Self::charged_rounds(cluster, leader, f, strategy, selected, plans);
        assert!(
            executed_rounds <= charged,
            "{}: executed {} rounds exceed the metered charge {} (n={}, m={})",
            selected.strategy_name(),
            executed_rounds,
            charged,
            cluster.n(),
            cluster.m()
        );
    }
}

impl GatherBackend for Executed {
    fn name(&self) -> &'static str {
        "executed"
    }

    fn gather(
        &self,
        cluster: &Graph,
        leader: usize,
        f: f64,
        strategy: &GatherStrategy,
        meter: &mut RoundMeter,
    ) -> GatherReport {
        let (selected, plans) = select_strategy_program_with_plans(cluster, leader, f, strategy);
        let (report, engine_meter) = self.run_selected(cluster, &selected);
        self.check(
            cluster,
            leader,
            f,
            strategy,
            &selected,
            &plans,
            report.rounds,
        );
        meter.merge_sequential(&engine_meter);
        report
    }

    fn gather_all_traced(
        &self,
        g: &Graph,
        jobs: &[GatherJob],
        f: f64,
        strategy: &GatherStrategy,
        meter: &mut RoundMeter,
        sink: &mut dyn TraceSink,
    ) -> Vec<GatherReport> {
        let GatherEngine::Executor(config) = &self.engine else {
            // The event engine has no batched cluster runner; per-cluster
            // runs with parallel meter folding are equivalent.
            return gather_all_sequential(self, g, jobs, f, strategy, meter, sink);
        };
        // Select once per cluster up front (planning is deterministic but
        // not free), then batch the heterogeneous programs through
        // `run_on_clusters` — `SelectedGather` is itself a `NodeProgram`.
        let prepared: Vec<(Graph, usize, SelectedGather, SelectionPlans)> = jobs
            .iter()
            .map(|job| {
                let (sub, map) = g.induced_subgraph(&job.members);
                let leader_local = local_leader(&map, job.leader);
                let (selected, plans) =
                    select_strategy_program_with_plans(&sub, leader_local, f, strategy);
                (sub, leader_local, selected, plans)
            })
            .collect();
        let members: Vec<Vec<usize>> = jobs.iter().map(|j| j.members.clone()).collect();
        let run = run_on_clusters(
            g,
            &members,
            |idx, _sub, _map| prepared[idx].2.clone(),
            config,
        )
        .expect("selected gather programs are model-compliant");
        let mut reports = Vec::with_capacity(jobs.len());
        for (idx, (sub, leader_local, selected, plans)) in prepared.iter().enumerate() {
            let executed = selected.executed_report(
                &run.cluster_states[idx],
                run.cluster_rounds[idx],
                run.cluster_messages[idx],
            );
            sink.event(&Event::ClusterRun {
                cluster: idx,
                rounds: run.cluster_rounds[idx],
                messages: run.cluster_messages[idx],
            });
            self.check(
                sub,
                *leader_local,
                f,
                strategy,
                selected,
                plans,
                executed.rounds,
            );
            reports.push(executed.into());
        }
        meter.merge_sequential(&run.meter);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_balance::LoadBalanceParams;
    use crate::programs::select_strategy_program;
    use crate::walks::WalkParams;
    use mfd_graph::generators;
    use mfd_sim::LatencyModel;

    fn leader_of(g: &Graph) -> usize {
        (0..g.n()).max_by_key(|&v| g.degree(v)).expect("non-empty")
    }

    #[test]
    fn executed_tree_gather_stays_within_the_metered_backend() {
        for g in [
            generators::triangulated_grid(6, 6),
            generators::wheel(32),
            generators::hypercube(4),
        ] {
            let leader = leader_of(&g);
            let strategy = GatherStrategy::TreePipeline;
            let mut charged = RoundMeter::new();
            let metered = Metered.gather(&g, leader, 0.1, &strategy, &mut charged);
            let mut spent = RoundMeter::new();
            let executed = Executed::default().gather(&g, leader, 0.1, &strategy, &mut spent);
            assert!(executed.rounds <= metered.rounds);
            assert!(spent.rounds() <= charged.rounds());
            assert!((executed.delivered_fraction - 1.0).abs() < 1e-12);
            assert_eq!(executed.per_vertex_delivered, metered.per_vertex_delivered);
        }
    }

    #[test]
    fn executed_backend_is_engine_invariant_in_rounds() {
        let g = generators::wheel(24);
        let leader = leader_of(&g);
        let strategy = GatherStrategy::LoadBalance(LoadBalanceParams::default());
        let mut m1 = RoundMeter::new();
        let sync = Executed::default().gather(&g, leader, 0.1, &strategy, &mut m1);
        let mut m2 = RoundMeter::new();
        let sim = Executed::sim(SimConfig::default().with_latency(LatencyModel::Fixed(3)))
            .gather(&g, leader, 0.1, &strategy, &mut m2);
        assert_eq!(sync.rounds, sim.rounds);
        assert_eq!(m1.rounds(), m2.rounds());
        assert_eq!(m1.messages(), m2.messages());
        assert_eq!(sync.per_vertex_delivered, sim.per_vertex_delivered);
    }

    #[test]
    fn walk_strategy_selects_the_walk_program_or_the_tree_fallback() {
        // The wheel's hub leader is walk-friendly; the grid's is not and
        // must fall back, exactly like the metered path.
        let params = WalkParams {
            max_seed_tries: 6,
            max_walks_per_message: 16,
            max_steps: 256,
            ..WalkParams::default()
        };
        let wheel = generators::wheel(32);
        let sel = select_strategy_program(&wheel, 0, 0.1, &GatherStrategy::WalkSchedule(params));
        assert_eq!(sel.strategy_name(), "walk-schedule");
        let grid = generators::triangulated_grid(6, 6);
        let params = WalkParams {
            max_seed_tries: 6,
            max_walks_per_message: 16,
            max_steps: 256,
            ..WalkParams::default()
        };
        let leader = leader_of(&grid);
        let sel =
            select_strategy_program(&grid, leader, 0.1, &GatherStrategy::WalkSchedule(params));
        assert_eq!(sel.strategy_name(), "walk-schedule(tree-fallback)");
        let mut meter = RoundMeter::new();
        let report = Executed::default().gather(
            &grid,
            leader,
            0.1,
            &GatherStrategy::WalkSchedule(WalkParams {
                max_seed_tries: 6,
                max_walks_per_message: 16,
                max_steps: 256,
                ..WalkParams::default()
            }),
            &mut meter,
        );
        assert_eq!(report.strategy, "walk-schedule(tree-fallback)");
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gather_all_batches_match_per_cluster_runs() {
        // Two disjoint clusters inside one ambient graph: the batched
        // executor path must report exactly what per-cluster runs report,
        // and fold rounds by max.
        let g = generators::triangulated_grid(4, 8);
        let left: Vec<usize> = (0..g.n()).filter(|v| v % 8 < 4).collect();
        let right: Vec<usize> = (0..g.n()).filter(|v| v % 8 >= 4).collect();
        let jobs = [&left, &right].map(|members| {
            let leader = members
                .iter()
                .copied()
                .max_by_key(|&v| g.degree(v))
                .expect("non-empty");
            GatherJob {
                members: members.clone(),
                leader,
            }
        });
        let strategy = GatherStrategy::TreePipeline;
        let backend = Executed::default();
        let mut batched_meter = RoundMeter::new();
        let batched = backend.gather_all(&g, &jobs, 0.1, &strategy, &mut batched_meter);
        let mut loop_meter = RoundMeter::new();
        let looped = gather_all_sequential(
            &backend,
            &g,
            &jobs,
            0.1,
            &strategy,
            &mut loop_meter,
            &mut (),
        );
        assert_eq!(batched.len(), 2);
        for (a, b) in batched.iter().zip(&looped) {
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.per_vertex_delivered, b.per_vertex_delivered);
            assert_eq!(a.strategy, b.strategy);
        }
        assert_eq!(batched_meter.rounds(), loop_meter.rounds());
        assert_eq!(batched_meter.messages(), loop_meter.messages());
    }
}
