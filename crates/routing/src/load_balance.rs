//! The load-balancing information gatherer of Lemma 2.2 (Ghosh et al. [GLM+99]).
//!
//! Every vertex `v` of a φ-expander cluster holds `deg(v)` messages destined for the
//! maximum-degree vertex `v*`. Each message is associated with one port of the
//! expander split; ports create several tokens carrying their message and the natural
//! local balancing rule (send one token across an edge whenever the load difference
//! exceeds `2Δ⋄ + 1`) spreads tokens until the ports of `v*` hold a proportional
//! share, at which point a `Δ/Θ(|E|)` fraction of the messages has provably arrived.
//! Phases repeat on the undelivered messages until a `1 − f` fraction has been
//! delivered.
//!
//! The implementation follows the paper's structure but uses configurable (and by
//! default much smaller) token counts and step budgets than the worst-case constants
//! of Lemma 2.2; delivery is *checked*, not assumed, and the reported round counts are
//! the rounds actually simulated. See DESIGN.md ("substitutions").

use mfd_congest::RoundMeter;
use mfd_graph::properties::spectral_sweep_cut;
use mfd_graph::Graph;

use crate::split::ExpanderSplit;

/// Tunable parameters for the load-balancing gatherer.
#[derive(Debug, Clone)]
pub struct LoadBalanceParams {
    /// Tokens created per undelivered message at the start of each phase.
    /// `0` selects an automatic value `≈ 4·(2Δ⋄+1)/φ̂` (capped).
    pub tokens_per_message: usize,
    /// Balancing steps per phase. `0` selects `≈ 4·tokens/φ̂` (capped).
    pub steps_per_phase: usize,
    /// Maximum number of phases before giving up.
    pub max_phases: usize,
    /// Optional conductance hint; if `None`, a spectral estimate of the cluster's
    /// conductance is used.
    pub phi_hint: Option<f64>,
    /// Hard cap applied to the automatic token count.
    pub max_tokens_per_message: usize,
    /// Hard cap applied to the automatic step budget.
    pub max_steps_per_phase: usize,
    /// Whether to charge the reverse run that tells each vertex which of its messages
    /// were delivered (needed by the decomposition algorithms).
    pub charge_reverse: bool,
}

impl Default for LoadBalanceParams {
    fn default() -> Self {
        LoadBalanceParams {
            tokens_per_message: 0,
            steps_per_phase: 0,
            max_phases: 48,
            phi_hint: None,
            max_tokens_per_message: 1024,
            max_steps_per_phase: 20_000,
            charge_reverse: true,
        }
    }
}

/// A fully sized load-balancing run: everything the gatherer derives from the
/// cluster topology, computed **once** and reused.
///
/// Both the metered simulation ([`load_balance_gather`]) and the executed
/// [`crate::programs::LoadBalanceProgram`] run from the same plan, so their
/// token counts, thresholds and step schedules cannot drift apart — and the
/// (comparatively expensive) spectral conductance estimate runs exactly once
/// per cluster instead of once per call site. Planning is pure: the same
/// cluster and parameters always produce the same plan (asserted by unit
/// test), which is what makes cross-engine runs reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalancePlan {
    /// The expander split the tokens balance on.
    pub split: ExpanderSplit,
    /// Conductance estimate used to size the token/step budgets.
    pub phi: f64,
    /// Load-difference threshold `2Δ⋄ + 1` of the balancing rule.
    pub threshold: usize,
    /// Tokens created per undelivered message at the start of each phase.
    pub tokens_per_message: usize,
    /// Balancing steps per phase.
    pub steps_per_phase: usize,
    /// Maximum number of phases before giving up.
    pub max_phases: usize,
    /// Whether the reverse notification run is charged.
    pub charge_reverse: bool,
}

impl LoadBalancePlan {
    /// Sizes a load-balancing run for `cluster` under `params`.
    pub fn new(cluster: &Graph, params: &LoadBalanceParams) -> Self {
        let split = ExpanderSplit::build(cluster);
        let delta_split = split.max_degree().max(1);
        let threshold = 2 * delta_split + 1;
        let phi = params
            .phi_hint
            .unwrap_or_else(|| estimate_conductance(cluster))
            .clamp(1e-3, 1.0);
        let tokens_per_message = if params.tokens_per_message > 0 {
            params.tokens_per_message
        } else {
            ((4.0 * threshold as f64 / phi).ceil() as usize)
                .clamp(threshold + 1, params.max_tokens_per_message)
        };
        let steps_per_phase = if params.steps_per_phase > 0 {
            params.steps_per_phase
        } else {
            ((4.0 * tokens_per_message as f64 / phi).ceil() as usize)
                .clamp(16, params.max_steps_per_phase)
        };
        LoadBalancePlan {
            split,
            phi,
            threshold,
            tokens_per_message,
            steps_per_phase,
            max_phases: params.max_phases,
            charge_reverse: params.charge_reverse,
        }
    }
}

/// Outcome of a load-balancing gather.
#[derive(Debug, Clone)]
pub struct LoadBalanceReport {
    /// Rounds charged on the meter by this gather.
    pub rounds: u64,
    /// Total number of messages (2·|E| of the cluster, the target's own messages
    /// count as delivered from the start).
    pub total_messages: usize,
    /// Per-message delivery flags, indexed by split port.
    pub delivered: Vec<bool>,
    /// Fraction of messages delivered.
    pub delivered_fraction: f64,
    /// Number of delivered messages per original cluster vertex.
    pub per_vertex_delivered: Vec<usize>,
    /// Number of phases executed.
    pub phases: usize,
    /// Conductance estimate used to size the token/step budgets.
    pub phi_estimate: f64,
}

/// Runs the load-balancing gatherer on a cluster graph.
///
/// `cluster` is the cluster's own graph (vertices `0..k`); `target` is the designated
/// sink `v*` (normally the maximum-degree vertex); `f` is the tolerated failure
/// fraction. Rounds are charged on `meter`: one CONGEST round per balancing step (the
/// balancing rule moves at most one token per split edge per step, and gadget-internal
/// moves are free), plus the reverse notification run if requested.
pub fn load_balance_gather(
    cluster: &Graph,
    target: usize,
    f: f64,
    params: &LoadBalanceParams,
    meter: &mut RoundMeter,
) -> LoadBalanceReport {
    let plan = LoadBalancePlan::new(cluster, params);
    load_balance_gather_with_plan(cluster, target, f, &plan, meter)
}

/// Runs the load-balancing gatherer from a pre-computed [`LoadBalancePlan`]
/// (the memoized form of [`load_balance_gather`]: call sites that gather from
/// the same cluster repeatedly, or compare the metered run against the
/// executed [`crate::programs::LoadBalanceProgram`], plan once and reuse).
pub fn load_balance_gather_with_plan(
    cluster: &Graph,
    target: usize,
    f: f64,
    plan: &LoadBalancePlan,
    meter: &mut RoundMeter,
) -> LoadBalanceReport {
    assert!(target < cluster.n());
    let split = &plan.split;
    let ports = split.num_ports();
    let threshold = plan.threshold;
    let phi = plan.phi;
    let tokens_per_message = plan.tokens_per_message;
    let steps_per_phase = plan.steps_per_phase;

    // Message IDs are split ports. Messages belonging to the target are delivered by
    // definition.
    let target_ports: Vec<usize> = split.ports(target, cluster).collect();
    let is_target_port: Vec<bool> = {
        let mut v = vec![false; ports];
        for &p in &target_ports {
            v[p] = true;
        }
        v
    };
    let mut delivered: Vec<bool> = (0..ports).map(|p| is_target_port[p]).collect();
    // Ports of isolated representation (degree-0 vertices get one dummy port) carry no
    // real message; mark them delivered so they do not distort the fraction.
    for v in cluster.vertices() {
        if cluster.degree(v) == 0 {
            for p in split.ports(v, cluster) {
                delivered[p] = true;
            }
        }
    }
    let real_messages: usize = 2 * cluster.m();

    let rounds_before = meter.rounds();
    let mut phases = 0usize;

    while phases < plan.max_phases {
        let undelivered: Vec<usize> = (0..ports).filter(|&p| !delivered[p]).collect();
        let remaining = undelivered.len();
        if remaining == 0 {
            break;
        }
        let frac_remaining = remaining as f64 / real_messages.max(1) as f64;
        if frac_remaining <= f {
            break;
        }
        phases += 1;

        // Seed tokens at the home ports of the undelivered messages.
        let mut tokens: Vec<Vec<u32>> = vec![Vec::new(); ports];
        for &p in &undelivered {
            tokens[p] = vec![p as u32; tokens_per_message];
        }
        let mut total_tokens = undelivered.len() * tokens_per_message;
        let token_budget = ports * tokens_per_message;

        let mut newly_delivered = 0usize;
        // Alternate load-balancing runs with token splitting (Lemma 2.2, "token
        // splitting"): splitting is a local operation and costs no rounds.
        loop {
            for _step in 0..steps_per_phase {
                // Determine moves from the loads at the beginning of the step.
                let loads: Vec<usize> = tokens.iter().map(Vec::len).collect();
                let mut moves: Vec<(usize, usize)> = Vec::new();
                let mut external_moves = 0u64;
                for x in 0..ports {
                    if loads[x] == 0 {
                        continue;
                    }
                    for &y in split.split.neighbors(x) {
                        if loads[x] >= loads[y] + threshold {
                            moves.push((x, y));
                            if !split.is_internal(x, y) {
                                external_moves += 1;
                            }
                        }
                    }
                }
                meter.charge_rounds(1);
                meter.charge_messages(external_moves);
                if moves.is_empty() {
                    break;
                }
                for (x, y) in moves {
                    if let Some(tok) = tokens[x].pop() {
                        tokens[y].push(tok);
                    }
                }
            }

            // Absorb: messages with a token at a target port are delivered.
            for &p in &target_ports {
                for &tok in &tokens[p] {
                    let msg = tok as usize;
                    if !delivered[msg] {
                        delivered[msg] = true;
                        newly_delivered += 1;
                    }
                }
            }

            if total_tokens >= token_budget {
                break;
            }
            // Split every token in place and balance again.
            for port_tokens in tokens.iter_mut() {
                let len = port_tokens.len();
                port_tokens.extend_from_within(0..len);
            }
            total_tokens *= 2;
        }

        if newly_delivered == 0 {
            // No progress: further phases would repeat the same outcome.
            break;
        }
    }

    let forward_rounds = meter.rounds() - rounds_before;
    if plan.charge_reverse {
        // Running the schedule in reverse tells every vertex which of its messages
        // arrived; it costs the same number of rounds.
        meter.charge_rounds(forward_rounds);
    }

    let mut per_vertex_delivered = vec![0usize; cluster.n()];
    let mut delivered_count = 0usize;
    for (p, &v) in split.owner.iter().enumerate().take(ports) {
        if cluster.degree(v) == 0 {
            continue;
        }
        if delivered[p] {
            per_vertex_delivered[v] += 1;
            delivered_count += 1;
        }
    }

    LoadBalanceReport {
        rounds: meter.rounds() - rounds_before,
        total_messages: real_messages,
        delivered,
        delivered_fraction: if real_messages == 0 {
            1.0
        } else {
            delivered_count as f64 / real_messages as f64
        },
        per_vertex_delivered,
        phases,
        phi_estimate: phi,
    }
}

/// Cheap conductance estimate used only for sizing token/step budgets: the
/// conductance of the best spectral sweep cut (an upper bound on Φ(G), within a
/// quadratic factor by Cheeger's inequality).
pub fn estimate_conductance(g: &Graph) -> f64 {
    if g.n() < 2 || g.m() == 0 {
        return 1.0;
    }
    match spectral_sweep_cut(g, 60) {
        Some(cut) => cut.conductance.clamp(1e-3, 1.0),
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;

    #[test]
    fn gathers_everything_on_a_clique() {
        let g = generators::complete(8);
        let mut meter = RoundMeter::new();
        let report = load_balance_gather(&g, 0, 0.0, &LoadBalanceParams::default(), &mut meter);
        assert_eq!(report.total_messages, 2 * g.m());
        assert!(
            report.delivered_fraction > 0.99,
            "fraction {}",
            report.delivered_fraction
        );
        assert!(report.rounds > 0);
        assert_eq!(meter.rounds(), report.rounds);
    }

    #[test]
    fn gathers_most_messages_on_a_hypercube() {
        let g = generators::hypercube(4);
        let target = 0;
        let mut meter = RoundMeter::new();
        let report =
            load_balance_gather(&g, target, 0.1, &LoadBalanceParams::default(), &mut meter);
        assert!(
            report.delivered_fraction >= 0.9,
            "fraction {}",
            report.delivered_fraction
        );
    }

    #[test]
    fn target_vertex_messages_count_as_delivered() {
        let g = generators::star(6);
        let mut meter = RoundMeter::new();
        let report = load_balance_gather(&g, 0, 0.5, &LoadBalanceParams::default(), &mut meter);
        // The hub owns half of all messages, so at least half are delivered for free.
        assert!(report.delivered_fraction >= 0.5);
        assert_eq!(report.per_vertex_delivered[0], 5);
    }

    #[test]
    fn reverse_run_doubles_the_rounds() {
        let g = generators::complete(6);
        let mut fwd = RoundMeter::new();
        let mut both = RoundMeter::new();
        let mut params = LoadBalanceParams {
            charge_reverse: false,
            ..Default::default()
        };
        let a = load_balance_gather(&g, 0, 0.0, &params, &mut fwd);
        params.charge_reverse = true;
        let b = load_balance_gather(&g, 0, 0.0, &params, &mut both);
        assert_eq!(2 * a.rounds, b.rounds);
    }

    #[test]
    fn planning_is_pure_and_memoized() {
        let g = generators::hypercube(4);
        let params = LoadBalanceParams::default();
        // Same input → same plan: the planner holds no hidden state.
        let a = LoadBalancePlan::new(&g, &params);
        let b = LoadBalancePlan::new(&g, &params);
        assert_eq!(a, b);
        assert!(a.tokens_per_message > a.threshold);
        assert!(a.steps_per_phase >= 16);
        // Gathering from the memoized plan is identical to re-planning inside
        // the gather call.
        let mut m1 = RoundMeter::new();
        let mut m2 = RoundMeter::new();
        let r1 = load_balance_gather(&g, 0, 0.1, &params, &mut m1);
        let r2 = load_balance_gather_with_plan(&g, 0, 0.1, &a, &mut m2);
        assert_eq!(r1.rounds, r2.rounds);
        assert_eq!(r1.delivered, r2.delivered);
        assert_eq!(r1.phases, r2.phases);
    }

    #[test]
    fn empty_cluster_is_trivially_done() {
        let g = Graph::new(3);
        let mut meter = RoundMeter::new();
        let report = load_balance_gather(&g, 0, 0.1, &LoadBalanceParams::default(), &mut meter);
        assert_eq!(report.total_messages, 0);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
        assert_eq!(report.rounds, 0);
    }
}
