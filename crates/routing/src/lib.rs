//! Information gathering inside high-conductance minor-free clusters (paper §2).
//!
//! The decomposition algorithms of the paper repeatedly need the following task: in a
//! cluster `S` whose induced (or associated) subgraph is a φ-expander, every vertex
//! `v` must deliver `deg(v)` messages of O(log n) bits to a designated high-degree
//! vertex `v*` — and later receive answers back — in a number of rounds that does not
//! depend on the cluster size, only on φ, Δ and the failure fraction `f`.
//!
//! This crate implements the paper's two gatherers plus the trivial baseline:
//!
//! * [`split`] — the *expander split* `G⋄` of a graph (one constant-degree expander
//!   gadget `X_v` per vertex, external edges in one-to-one correspondence with the
//!   original edges), which both gatherers run on. One round of `G⋄` costs one
//!   CONGEST round of `G` because gadget-internal communication is local.
//! * [`load_balance`] — the Ghosh et al. natural load-balancing algorithm with the
//!   token-splitting phases of Lemma 2.2.
//! * [`walks`] — derandomized lazy random walks (Lemmas 2.3–2.6): a vertex that knows
//!   the cluster topology searches for a seed whose pseudo-random walks deliver a
//!   `1 − f` fraction of all messages without congestion overflow, broadcasts the
//!   (short) schedule, and the cluster executes it.
//! * [`gather`] — a uniform [`gather::GatherReport`] interface over the three
//!   strategies (BFS-tree pipeline, load balancing, walk schedule) used by the
//!   decomposition layer to pick whichever is cheapest and to account for the T
//!   parameter of the (ε, D, T)-decomposition.
//! * [`programs`] — the same three strategies as **executed**
//!   [`mfd_runtime::NodeProgram`]s, runnable unmodified on the synchronous
//!   executor and the `mfd-sim` event engine.
//!
//! # Metered vs executed
//!
//! Every strategy exists in two modes that share one plan:
//!
//! | | metered | executed |
//! |---|---|---|
//! | entry point | [`gather::gather_to_leader`] | [`programs`] + [`programs::execute_gather`] |
//! | what runs | a leader-local simulation that *charges* the paper's round bounds on a [`mfd_congest::RoundMeter`] | a real per-vertex message-passing program whose every round is validated by the engines' meter |
//! | cost reported | the charged upper bound (including reverse notification and control rounds) | rounds actually spent; validated ≤ the charged bound |
//! | use it for | decomposition accounting (the T parameter), cheap strategy comparison | engine benchmarks, latency studies, end-to-end validation |
//!
//! The shared plans ([`load_balance::LoadBalancePlan`], [`walks::WalkPlan`])
//! memoize the expander split and the spectral conductance/mixing estimates,
//! are pure in their inputs, and are what keeps the two modes comparable: a
//! metered run and an executed run sized by the same plan measure the same
//! protocol.
//!
//! # Picking a strategy
//!
//! * **Tree pipeline** — always correct, delivers everything; costs
//!   `O(depth + vol(S)/deg_tree(root))`. The default for the small-diameter,
//!   low-volume clusters Theorem 1.1 produces, and the fallback whenever a
//!   cluster is a poor expander.
//! * **Load balance (Lemma 2.2)** — wants a genuine φ-expander; cost scales
//!   with `1/φ`, independent of cluster size. Best when the leader has
//!   moderate degree and the cluster mixes well (cliques, hubs, hypercubes).
//! * **Walk schedule (Lemmas 2.5/2.6)** — wants a high-degree leader
//!   (`deg(v*) = Θ(vol)`) so walks actually end in the leader's gadget;
//!   planning is free leader-local work, and one schedule can serve many
//!   clusters (Lemma 2.6). On low-degree-leader clusters its good fraction
//!   collapses and [`gather::gather_to_leader`] falls back to the tree.
//!
//! A guided tour of this crate's role in the workspace lives in
//! `docs/ARCHITECTURE.md` (section "mfd-routing").

pub mod backend;
pub mod gather;
pub mod load_balance;
pub mod programs;
pub mod split;
pub mod walks;

pub use backend::{Executed, GatherBackend, GatherEngine, GatherJob, Metered};
pub use gather::{GatherReport, GatherStrategy};
pub use programs::{
    ExecutedGather, GatherProgram, LoadBalanceProgram, SelectedGather, TreeGatherProgram,
    WalkScheduleProgram,
};
pub use split::ExpanderSplit;
