//! Information gathering inside high-conductance minor-free clusters (paper §2).
//!
//! The decomposition algorithms of the paper repeatedly need the following task: in a
//! cluster `S` whose induced (or associated) subgraph is a φ-expander, every vertex
//! `v` must deliver `deg(v)` messages of O(log n) bits to a designated high-degree
//! vertex `v*` — and later receive answers back — in a number of rounds that does not
//! depend on the cluster size, only on φ, Δ and the failure fraction `f`.
//!
//! This crate implements the paper's two gatherers plus the trivial baseline:
//!
//! * [`split`] — the *expander split* `G⋄` of a graph (one constant-degree expander
//!   gadget `X_v` per vertex, external edges in one-to-one correspondence with the
//!   original edges), which both gatherers run on. One round of `G⋄` costs one
//!   CONGEST round of `G` because gadget-internal communication is local.
//! * [`load_balance`] — the Ghosh et al. natural load-balancing algorithm with the
//!   token-splitting phases of Lemma 2.2.
//! * [`walks`] — derandomized lazy random walks (Lemmas 2.3–2.6): a vertex that knows
//!   the cluster topology searches for a seed whose pseudo-random walks deliver a
//!   `1 − f` fraction of all messages without congestion overflow, broadcasts the
//!   (short) schedule, and the cluster executes it.
//! * [`gather`] — a uniform [`gather::GatherReport`] interface over the three
//!   strategies (BFS-tree pipeline, load balancing, walk schedule) used by the
//!   decomposition layer to pick whichever is cheapest and to account for the T
//!   parameter of the (ε, D, T)-decomposition.

pub mod gather;
pub mod load_balance;
pub mod split;
pub mod walks;

pub use gather::{GatherReport, GatherStrategy};
pub use split::ExpanderSplit;
