//! Derandomized lazy-random-walk routing schedules (paper §2.2, Lemmas 2.3–2.6).
//!
//! When some vertex `v'` already knows the topology of the cluster, it can *locally*
//! compute a routing schedule: it seeds `r` lazy random walks per message on the
//! expander split, driven by a short pseudo-random seed, and checks that (a) every
//! message has a walk ending in the target gadget `X_{v*}` and (b) no split vertex is
//! visited by more than `3r` walks at any time step. A message satisfying both is
//! *good* and can be routed along its walk in `3r·τ` rounds. The leader searches
//! seeds until a `1 − f` fraction of the messages is good, then broadcasts the seed
//! (together with the walk parameters) and the cluster executes the schedule.
//!
//! The paper derandomizes with a strictly k-wise independent hash family so that the
//! seed length — and therefore the broadcast cost — is bounded. We substitute a
//! 64-bit mixing hash and *check* the goodness fraction explicitly during seed search
//! (see DESIGN.md); the broadcast cost charged is the same `O(k log n)`-bit budget the
//! paper accounts for.

use mfd_congest::{primitives, RoundMeter};
use mfd_graph::properties::splitmix64;
use mfd_graph::Graph;

use crate::split::ExpanderSplit;

/// Tunable parameters for the walk-schedule gatherer.
#[derive(Debug, Clone)]
pub struct WalkParams {
    /// Walks per message (`r`). `0` selects the paper's value
    /// `≈ (|V⋄|/Δ)·ln(1/f) + log τ` (capped).
    pub walks_per_message: usize,
    /// Walk length (`τ`). `0` selects a spectral mixing-time estimate (capped).
    pub steps: usize,
    /// Congestion cap factor: a vertex may host at most `factor · r` walks per step.
    pub congestion_factor: usize,
    /// Maximum number of seeds tried before accepting the best one found.
    pub max_seed_tries: usize,
    /// Cap applied to the automatic `r`.
    pub max_walks_per_message: usize,
    /// Cap applied to the automatic `τ`.
    pub max_steps: usize,
    /// Whether to charge the reverse run notifying vertices of delivered messages.
    pub charge_reverse: bool,
}

impl Default for WalkParams {
    fn default() -> Self {
        WalkParams {
            walks_per_message: 0,
            steps: 0,
            congestion_factor: 3,
            max_seed_tries: 24,
            max_walks_per_message: 48,
            max_steps: 2048,
            charge_reverse: true,
        }
    }
}

/// A routing schedule computed locally by a vertex that knows the cluster topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkSchedule {
    /// Seed of the pseudo-random hash driving every walk.
    pub seed: u64,
    /// Walks per message (`r`).
    pub walks_per_message: usize,
    /// Walk length (`τ`).
    pub steps: usize,
    /// The designated sink `v*` (cluster-local index).
    pub target: usize,
    /// Size of the schedule description in 64-bit words, as charged for the broadcast
    /// (the paper's `O((r·τ)·log n)`-bit hash description).
    pub schedule_words: u64,
}

/// Outcome of planning a schedule (a purely local computation at the leader).
///
/// The plan memoizes everything derived from the cluster topology — the
/// expander split (whose construction is linear but repeated at every call
/// site otherwise) and the mixing-time estimate baked into
/// [`WalkSchedule::steps`] — so executing or re-executing a schedule never
/// re-runs the spectral estimators. Planning is pure: the same cluster,
/// target, failure budget and parameters always produce the same plan.
#[derive(Debug, Clone)]
pub struct WalkPlan {
    /// The chosen schedule.
    pub schedule: WalkSchedule,
    /// The expander split the walks run on (memoized from planning).
    pub split: ExpanderSplit,
    /// Per-message goodness under the chosen seed (indexed by split port).
    pub good: Vec<bool>,
    /// Fraction of messages that are good.
    pub good_fraction: f64,
    /// Number of seeds tried.
    pub seeds_tried: usize,
}

/// Outcome of executing a schedule in the cluster.
#[derive(Debug, Clone)]
pub struct WalkGatherReport {
    /// The schedule that was executed.
    pub schedule: WalkSchedule,
    /// Rounds charged on the meter by this gather (broadcast + execution).
    pub rounds: u64,
    /// Per-message delivery flags (indexed by split port).
    pub delivered: Vec<bool>,
    /// Fraction of messages delivered.
    pub delivered_fraction: f64,
    /// Delivered message count per original cluster vertex.
    pub per_vertex_delivered: Vec<usize>,
    /// Total number of messages.
    pub total_messages: usize,
}

/// Estimates the mixing time of the lazy random walk on `g` from the spectral gap of
/// the normalized adjacency operator (power iteration). Returns a value in
/// `[4, cap]`.
pub fn estimate_mixing_time(g: &Graph, cap: usize) -> usize {
    let n = g.n();
    if n < 2 || g.m() == 0 {
        return 4;
    }
    let deg: Vec<f64> = (0..n).map(|v| g.degree(v).max(1) as f64).collect();
    let sqrt_deg: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();
    let norm_stat: f64 = sqrt_deg.iter().map(|x| x * x).sum::<f64>().sqrt();
    let stationary: Vec<f64> = sqrt_deg.iter().map(|x| x / norm_stat).collect();
    let mut x: Vec<f64> = (0..n)
        .map(|v| (splitmix64(v as u64 ^ 0x5eed) as f64 / u64::MAX as f64) - 0.5)
        .collect();
    let mut lambda = 0.0f64;
    for _ in 0..80 {
        let dot: f64 = x.iter().zip(&stationary).map(|(a, b)| a * b).sum();
        for v in 0..n {
            x[v] -= dot * stationary[v];
        }
        let mut y = vec![0.0f64; n];
        for v in 0..n {
            let mut acc = 0.0;
            for &u in g.neighbors(v) {
                acc += x[u] / (sqrt_deg[v] * sqrt_deg[u]);
            }
            y[v] = 0.5 * x[v] + 0.5 * acc;
        }
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 4;
        }
        lambda = norm / x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        for y_v in y.iter_mut() {
            *y_v /= norm;
        }
        x = y;
    }
    let gap = (1.0 - lambda).max(1e-3);
    let tau = ((g.m().max(2) as f64).ln() / gap).ceil() as usize;
    tau.clamp(4, cap.max(4))
}

/// Plans a walk schedule for gathering `deg(v)` messages from every cluster vertex to
/// `target`. This is a local computation at the vertex that knows the topology; it
/// costs no rounds.
pub fn plan_walk_schedule(cluster: &Graph, target: usize, f: f64, params: &WalkParams) -> WalkPlan {
    assert!(target < cluster.n());
    let split = ExpanderSplit::build(cluster);
    let tau = if params.steps > 0 {
        params.steps
    } else {
        estimate_mixing_time(&split.split, params.max_steps)
    };
    let ports = split.num_ports();
    let delta = cluster.degree(target).max(1);
    let r = if params.walks_per_message > 0 {
        params.walks_per_message
    } else {
        let base = (ports as f64 / delta as f64) * (1.0 / f.max(1e-6)).ln().max(1.0)
            + (tau as f64).log2().max(1.0);
        (base.ceil() as usize).clamp(2, params.max_walks_per_message)
    };

    let mut best: Option<(u64, Vec<bool>, f64)> = None;
    let mut seeds_tried = 0usize;
    for try_idx in 0..params.max_seed_tries.max(1) {
        seeds_tried += 1;
        let seed = splitmix64(0xc0ff_ee00 + try_idx as u64);
        let (good, fraction) = evaluate_seed(
            cluster,
            &split,
            target,
            seed,
            r,
            tau,
            params.congestion_factor,
        );
        let better = match &best {
            None => true,
            Some((_, _, bf)) => fraction > *bf,
        };
        if better {
            best = Some((seed, good, fraction));
        }
        if best.as_ref().map(|(_, _, bf)| *bf).unwrap_or(0.0) >= 1.0 - f {
            break;
        }
    }
    let (seed, good, good_fraction) = best.expect("at least one seed tried");
    // The paper's schedule description is the k-wise independent hash function:
    // k = (1 + log d)·2r·τ bits of independence, described in O(k·log n) bits.
    let bits_per_word = 64u64;
    let log_d = (split.max_degree().max(2) as f64).log2().ceil() as u64 + 1;
    let k_bits = log_d * 2 * r as u64 * tau as u64;
    let id_bits = (cluster.n().max(2) as f64).log2().ceil() as u64;
    let schedule_words = (k_bits * id_bits).div_ceil(bits_per_word).max(1);
    WalkPlan {
        schedule: WalkSchedule {
            seed,
            walks_per_message: r,
            steps: tau,
            target,
            schedule_words,
        },
        split,
        good,
        good_fraction,
        seeds_tried,
    }
}

/// One step of the seeded lazy walk `walk_id` at time `t` from split vertex
/// `cur`: stay put with probability 1/2, otherwise hop to a pseudo-randomly
/// chosen split neighbor. Pure in `(seed, walk_id, t, cur)` — the planner, the
/// goodness checker and the executed [`crate::programs::WalkScheduleProgram`]
/// all reproduce trajectories through this one function, so they can never
/// disagree about where a walk goes.
pub(crate) fn walk_step(
    split: &ExpanderSplit,
    seed: u64,
    walk_id: u64,
    t: usize,
    cur: usize,
) -> usize {
    let h = splitmix64(seed ^ splitmix64(walk_id.wrapping_mul(0x9e37) ^ (t as u64) << 1));
    let lazy = h & 1 == 0;
    if !lazy {
        let nbrs = split.split.neighbors(cur);
        if !nbrs.is_empty() {
            let pick = (splitmix64(h ^ 0xabcd) as usize) % nbrs.len();
            return nbrs[pick];
        }
    }
    cur
}

/// Simulates all walks for one seed and reports which messages are good.
fn evaluate_seed(
    cluster: &Graph,
    split: &ExpanderSplit,
    target: usize,
    seed: u64,
    r: usize,
    tau: usize,
    congestion_factor: usize,
) -> (Vec<bool>, f64) {
    let ports = split.num_ports();
    let target_ports: Vec<bool> = {
        let mut v = vec![false; ports];
        for p in split.ports(target, cluster) {
            v[p] = true;
        }
        v
    };
    let real_message = |p: usize| cluster.degree(split.owner[p]) > 0;
    // visits[t][w] would be too large as a dense matrix for big clusters; use a
    // flat Vec of counts since tau * ports is modest for cluster-sized graphs.
    let mut visits: Vec<u32> = vec![0; (tau + 1) * ports];
    // Trajectories are re-generated on demand from the seed, so we only store the
    // final position and the visit counts.
    let mut reaches_target: Vec<bool> = vec![false; ports];
    let mut positions: Vec<usize> = Vec::new();
    let mut walk_sources: Vec<usize> = Vec::new();
    for p in 0..ports {
        if !real_message(p) {
            continue;
        }
        for w in 0..r {
            positions.push(p);
            walk_sources.push(p);
            let walk_id = (p * r + w) as u64;
            visits[p] += 1;
            let mut cur = p;
            for t in 0..tau {
                cur = walk_step(split, seed, walk_id, t, cur);
                visits[(t + 1) * ports + cur] += 1;
            }
            if target_ports[cur] {
                reaches_target[p] = true;
            }
            *positions.last_mut().unwrap() = cur;
        }
    }
    // Congestion check: a message is good if all positions its walks visit are below
    // the cap at the respective time. Re-simulate to check per-message congestion.
    let cap = (congestion_factor * r) as u32;
    let mut good = vec![false; ports];
    let mut good_count = 0usize;
    let mut total = 0usize;
    for p in 0..ports {
        if !real_message(p) {
            continue;
        }
        total += 1;
        if !reaches_target[p] {
            continue;
        }
        let mut congested = false;
        'walks: for w in 0..r {
            let walk_id = (p * r + w) as u64;
            let mut cur = p;
            if visits[cur] > cap {
                congested = true;
                break;
            }
            for t in 0..tau {
                cur = walk_step(split, seed, walk_id, t, cur);
                if visits[(t + 1) * ports + cur] > cap {
                    congested = true;
                    break 'walks;
                }
            }
        }
        if !congested {
            good[p] = true;
            good_count += 1;
        }
    }
    let fraction = if total == 0 {
        1.0
    } else {
        good_count as f64 / total as f64
    };
    (good, fraction)
}

/// Executes a planned schedule inside the cluster: broadcasts the schedule from the
/// planning vertex along a BFS tree, then runs the walks for `3r·τ` rounds (the
/// congestion cap guarantees this suffices for every good message), plus the reverse
/// notification run if requested. Rounds are charged on `meter`.
pub fn execute_walk_gather(
    cluster: &Graph,
    plan: &WalkPlan,
    params: &WalkParams,
    meter: &mut RoundMeter,
) -> WalkGatherReport {
    let schedule = plan.schedule.clone();
    let rounds_before = meter.rounds();
    // Broadcast the schedule description over a BFS tree rooted at the target.
    if cluster.n() > 1 && cluster.m() > 0 {
        let tree = primitives::build_bfs_tree(cluster, None, schedule.target, meter);
        primitives::broadcast_words(cluster, &tree, schedule.schedule_words, meter);
    }
    // Execute the walks: 3r rounds per step (the congestion cap), exactly as in the
    // paper's analysis.
    let exec_rounds = (params.congestion_factor as u64)
        * (schedule.walks_per_message as u64)
        * (schedule.steps as u64);
    meter.charge_rounds(exec_rounds);
    let split = &plan.split;
    meter
        .charge_messages((plan.good.iter().filter(|&&g| g).count() as u64) * schedule.steps as u64);
    if params.charge_reverse {
        meter.charge_rounds(exec_rounds);
    }

    let mut per_vertex_delivered = vec![0usize; cluster.n()];
    let mut delivered_count = 0usize;
    let total_messages = 2 * cluster.m();
    let mut delivered = plan.good.clone();
    // The target's own messages never leave the target; count them delivered.
    for p in split.ports(schedule.target, cluster) {
        if cluster.degree(schedule.target) > 0 && !delivered[p] {
            delivered[p] = true;
        }
    }
    for (p, &d) in delivered.iter().enumerate() {
        if d && cluster.degree(split.owner[p]) > 0 {
            per_vertex_delivered[split.owner[p]] += 1;
            delivered_count += 1;
        }
    }
    WalkGatherReport {
        schedule,
        rounds: meter.rounds() - rounds_before,
        delivered,
        delivered_fraction: if total_messages == 0 {
            1.0
        } else {
            delivered_count as f64 / total_messages as f64
        },
        per_vertex_delivered,
        total_messages,
    }
}

/// Plans a single schedule that works for several disjoint clusters at once
/// (Lemma 2.6): the same seed is checked against every cluster and the overall good
/// fraction is the fraction over all messages of all clusters.
pub fn plan_common_schedule(
    clusters: &[(Graph, usize)],
    f: f64,
    params: &WalkParams,
) -> Vec<WalkPlan> {
    if clusters.is_empty() {
        return Vec::new();
    }
    let splits: Vec<ExpanderSplit> = clusters
        .iter()
        .map(|(g, _)| ExpanderSplit::build(g))
        .collect();
    let tau = if params.steps > 0 {
        params.steps
    } else {
        splits
            .iter()
            .map(|s| estimate_mixing_time(&s.split, params.max_steps))
            .max()
            .unwrap_or(4)
    };
    let r = if params.walks_per_message > 0 {
        params.walks_per_message
    } else {
        clusters
            .iter()
            .zip(&splits)
            .map(|((g, target), s)| {
                let delta = g.degree(*target).max(1);
                let base = (s.num_ports() as f64 / delta as f64)
                    * (1.0 / f.max(1e-6)).ln().max(1.0)
                    + (tau as f64).log2().max(1.0);
                (base.ceil() as usize).clamp(2, params.max_walks_per_message)
            })
            .max()
            .unwrap_or(2)
    };
    // (seed, per-cluster (good-mask, fraction) pairs, overall good fraction)
    type SeedAttempt = (u64, Vec<(Vec<bool>, f64)>, f64);
    let mut best: Option<SeedAttempt> = None;
    for try_idx in 0..params.max_seed_tries.max(1) {
        let seed = splitmix64(0xbeef_0000 + try_idx as u64);
        let mut per_cluster = Vec::with_capacity(clusters.len());
        let mut good_total = 0usize;
        let mut msg_total = 0usize;
        for ((g, target), s) in clusters.iter().zip(&splits) {
            let (good, _) = evaluate_seed(g, s, *target, seed, r, tau, params.congestion_factor);
            let goods = good.iter().filter(|&&b| b).count();
            good_total += goods;
            msg_total += 2 * g.m();
            per_cluster.push((good, 0.0));
        }
        let fraction = if msg_total == 0 {
            1.0
        } else {
            good_total as f64 / msg_total as f64
        };
        let better = best.as_ref().is_none_or(|(_, _, bf)| fraction > *bf);
        if better {
            best = Some((seed, per_cluster, fraction));
        }
        if fraction >= 1.0 - f {
            break;
        }
    }
    let (seed, per_cluster, _) = best.expect("at least one seed tried");
    clusters
        .iter()
        .zip(splits)
        .zip(per_cluster)
        .map(|(((g, target), s), (good, _))| {
            let goods = good.iter().filter(|&&b| b).count();
            let total = 2 * g.m();
            let log_d = (s.max_degree().max(2) as f64).log2().ceil() as u64 + 1;
            let k_bits = log_d * 2 * r as u64 * tau as u64;
            let id_bits = (g.n().max(2) as f64).log2().ceil() as u64;
            WalkPlan {
                schedule: WalkSchedule {
                    seed,
                    walks_per_message: r,
                    steps: tau,
                    target: *target,
                    schedule_words: (k_bits * id_bits).div_ceil(64).max(1),
                },
                split: s,
                good_fraction: if total == 0 {
                    1.0
                } else {
                    goods as f64 / total as f64
                },
                good,
                seeds_tried: 1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;

    #[test]
    fn mixing_time_orders_families_sensibly() {
        let expander = estimate_mixing_time(&generators::hypercube(6), 100_000);
        let path = estimate_mixing_time(&generators::path(64), 100_000);
        assert!(expander < path, "expander {expander} vs path {path}");
    }

    #[test]
    fn schedule_planning_reaches_high_goodness_on_expanders() {
        let g = generators::complete(10);
        let plan = plan_walk_schedule(&g, 0, 0.1, &WalkParams::default());
        assert!(plan.good_fraction >= 0.9, "fraction {}", plan.good_fraction);
        assert!(plan.schedule.walks_per_message >= 2);
        assert!(plan.schedule.steps >= 4);
    }

    #[test]
    fn executing_a_schedule_charges_broadcast_and_walk_rounds() {
        let g = generators::hypercube(4);
        let params = WalkParams::default();
        let plan = plan_walk_schedule(&g, 0, 0.25, &params);
        let mut meter = RoundMeter::new();
        let report = execute_walk_gather(&g, &plan, &params, &mut meter);
        assert_eq!(report.rounds, meter.rounds());
        let exec = (params.congestion_factor
            * plan.schedule.walks_per_message
            * plan.schedule.steps) as u64;
        assert!(report.rounds >= 2 * exec);
        assert!(
            report.delivered_fraction >= 0.7,
            "fraction {}",
            report.delivered_fraction
        );
    }

    #[test]
    fn per_vertex_delivery_counts_are_consistent() {
        let g = generators::complete(8);
        let params = WalkParams::default();
        let plan = plan_walk_schedule(&g, 0, 0.05, &params);
        let mut meter = RoundMeter::new();
        let report = execute_walk_gather(&g, &plan, &params, &mut meter);
        let sum: usize = report.per_vertex_delivered.iter().sum();
        let count = report.delivered.iter().filter(|&&d| d).count();
        assert_eq!(sum, count);
        assert!(report.per_vertex_delivered[0] >= g.degree(0));
    }

    #[test]
    fn common_schedule_covers_multiple_clusters() {
        let clusters = vec![
            (generators::complete(6), 0usize),
            (generators::hypercube(3), 0usize),
            (generators::wheel(8), 0usize),
        ];
        let plans = plan_common_schedule(&clusters, 0.2, &WalkParams::default());
        assert_eq!(plans.len(), 3);
        let seed = plans[0].schedule.seed;
        assert!(plans.iter().all(|p| p.schedule.seed == seed));
        let avg: f64 = plans.iter().map(|p| p.good_fraction).sum::<f64>() / 3.0;
        assert!(avg >= 0.6, "avg goodness {avg}");
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let g = generators::wheel(12);
        let a = plan_walk_schedule(&g, 0, 0.1, &WalkParams::default());
        let b = plan_walk_schedule(&g, 0, 0.1, &WalkParams::default());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.good, b.good);
    }
}
