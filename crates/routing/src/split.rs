//! The expander split `G⋄` of a graph (paper §2, "Expander split").
//!
//! For every vertex `v` of degree `d`, the split contains a gadget `X_v` on `d`
//! *ports*, wired as a constant-degree expander; for every edge `{u, v}` of `G`, one
//! port of `X_u` is connected to one port of `X_v` (an *external* edge). The
//! conductance of `G⋄` (as sparsity) is within a constant factor of the conductance of
//! `G`, and — crucially for the CONGEST simulation — a round of communication on `G⋄`
//! can be simulated by one round on `G`: gadget-internal edges live inside a single
//! device and are free, and external edges correspond one-to-one to edges of `G`.

use mfd_graph::Graph;

/// The expander split of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpanderSplit {
    /// The split graph `G⋄` on `2m` port vertices.
    pub split: Graph,
    /// `owner[x]` is the original vertex whose gadget contains port `x`.
    pub owner: Vec<usize>,
    /// `port_offset[v]..port_offset[v] + deg(v)` are the ports of vertex `v`.
    pub port_offset: Vec<usize>,
    /// For every original edge `(u, v)` with `u < v`, the pair of ports joined by the
    /// corresponding external edge.
    pub external: Vec<((usize, usize), (usize, usize))>,
    num_ports: usize,
}

impl ExpanderSplit {
    /// Builds the expander split of `g`.
    ///
    /// Gadgets: for degree ≤ 8 the gadget is a clique; for larger degrees it is a
    /// de Bruijn-style constant-degree graph (cycle plus doubling chords), a standard
    /// constant-conductance family.
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let mut port_offset = vec![0usize; n + 1];
        for v in 0..n {
            port_offset[v + 1] = port_offset[v] + g.degree(v).max(1);
        }
        let num_ports = port_offset[n];
        let mut split = Graph::new(num_ports);
        let mut owner = vec![0usize; num_ports];
        for (v, &start) in port_offset.iter().enumerate().take(n) {
            let d = g.degree(v).max(1);
            for p in 0..d {
                owner[start + p] = v;
            }
            Self::wire_gadget(&mut split, start, d);
        }
        // External edges: vertex v's i-th incident edge uses its i-th port.
        let mut next_port: Vec<usize> = (0..n).map(|v| port_offset[v]).collect();
        let mut external = Vec::with_capacity(g.m());
        for (u, v) in g.edges() {
            let pu = next_port[u];
            next_port[u] += 1;
            let pv = next_port[v];
            next_port[v] += 1;
            split.add_edge(pu, pv);
            external.push(((u, v), (pu, pv)));
        }
        ExpanderSplit {
            split,
            owner,
            port_offset: port_offset[..n].to_vec(),
            external,
            num_ports,
        }
    }

    fn wire_gadget(split: &mut Graph, start: usize, d: usize) {
        if d <= 1 {
            return;
        }
        if d <= 8 {
            for i in 0..d {
                for j in (i + 1)..d {
                    split.add_edge(start + i, start + j);
                }
            }
            return;
        }
        for i in 0..d {
            split.add_edge(start + i, start + (i + 1) % d);
            split.add_edge(start + i, start + (2 * i) % d);
            split.add_edge(start + i, start + (2 * i + 1) % d);
        }
    }

    /// Number of ports (vertices of `G⋄`), equal to `Σ_v max(deg(v), 1)`.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Ports belonging to original vertex `v`.
    pub fn ports(&self, v: usize, g: &Graph) -> std::ops::Range<usize> {
        let start = self.port_offset[v];
        start..start + g.degree(v).max(1)
    }

    /// Returns `true` if the split edge `{x, y}` is internal to a gadget (and
    /// therefore free to use in the CONGEST simulation).
    pub fn is_internal(&self, x: usize, y: usize) -> bool {
        self.owner[x] == self.owner[y]
    }

    /// Maximum degree of the split graph (a small constant by construction).
    pub fn max_degree(&self) -> usize {
        self.split.max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_graph::generators;
    use mfd_graph::properties::spectral_sweep_cut;

    #[test]
    fn split_sizes_are_right() {
        let g = generators::cycle(6);
        let s = ExpanderSplit::build(&g);
        assert_eq!(s.num_ports(), 12);
        // 6 gadget cliques of size 2 (1 edge each) + 6 external edges.
        assert_eq!(s.split.m(), 12);
        assert_eq!(s.external.len(), 6);
    }

    #[test]
    fn gadgets_have_constant_degree() {
        let g = generators::wheel(40);
        let s = ExpanderSplit::build(&g);
        assert!(s.max_degree() <= 8 + 2, "split degree {}", s.max_degree());
        // Every external edge joins ports of different owners.
        for &((u, v), (pu, pv)) in &s.external {
            assert_eq!(s.owner[pu], u);
            assert_eq!(s.owner[pv], v);
            assert!(!s.is_internal(pu, pv));
        }
    }

    #[test]
    fn each_port_hosts_exactly_one_external_edge() {
        let g = generators::triangulated_grid(5, 5);
        let s = ExpanderSplit::build(&g);
        let mut used = vec![0usize; s.num_ports()];
        for &(_, (pu, pv)) in &s.external {
            used[pu] += 1;
            used[pv] += 1;
        }
        for v in g.vertices() {
            for p in s.ports(v, &g) {
                assert!(used[p] <= 1);
            }
            let total: usize = s.ports(v, &g).map(|p| used[p]).sum();
            assert_eq!(total, g.degree(v));
        }
    }

    #[test]
    fn split_of_an_expander_is_well_connected() {
        let g = generators::hypercube(5);
        let s = ExpanderSplit::build(&g);
        assert!(s.split.is_connected());
        let cut = spectral_sweep_cut(&s.split, 150).unwrap();
        // The hypercube has conductance 1/5; the split should retain a constant
        // fraction of it.
        assert!(cut.conductance > 0.01, "conductance {}", cut.conductance);
    }

    #[test]
    fn isolated_vertices_get_a_single_port() {
        let g = Graph::new(3);
        let s = ExpanderSplit::build(&g);
        assert_eq!(s.num_ports(), 3);
        assert_eq!(s.split.m(), 0);
    }
}
