//! The executed load-balancing gatherer (Lemma 2.2).
//!
//! Every vertex locally simulates its own expander-split gadget: the ports,
//! their tokens and the gadget-internal balancing moves are free local work,
//! exactly as the split construction promises. Only moves across *external*
//! split edges — which correspond one-to-one to cluster edges — become
//! messages. One round carries at most one [`LbMsg::Update`] per edge per
//! direction, packing the boundary port's current load together with the
//! token (if any) the balancing rule pushes across, the classic O(log n)-bit
//! piggyback the metered path idealizes away.
//!
//! Differences from the metered [`crate::load_balance::load_balance_gather`]
//! (both run from the same [`LoadBalancePlan`], so budgets and thresholds are
//! identical):
//!
//! * Neighbor loads across external edges are one round stale (a vertex knows
//!   what its neighbor advertised last round, not its live load). The
//!   `2Δ⋄ + 1` threshold absorbs the staleness; the executed delivered
//!   fraction is validated against the metered guarantee, not against an
//!   identical trajectory.
//! * Instead of the metered path's per-phase reseeding of *undelivered*
//!   messages (which would require the reverse notification mid-run), every
//!   vertex blindly reseeds its own messages at each phase boundary — a
//!   superset of the metered token population.
//! * Termination is distributed: the leader watches its absorbed fraction and
//!   floods a [`LbMsg::Stop`] wave once the failure budget is met or no new
//!   message has arrived for two phases; a round budget derived from the plan
//!   backstops everything.

use mfd_graph::Graph;
use mfd_runtime::{Envelope, NodeCtx, NodeProgram, Outbox, RuntimeMessage};

use crate::load_balance::LoadBalancePlan;

use super::GatherProgram;

/// Message vocabulary of the executed load balancer; one O(log n)-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbMsg {
    /// Per-edge gossip: the sender's boundary-port load after this round's
    /// moves, plus the token (a message id) moved across the edge, if any.
    Update {
        /// Load of the sending port.
        load: u32,
        /// Token pushed across this external edge this round.
        token: Option<u32>,
    },
    /// The leader's failure budget is met: halt after forwarding.
    Stop,
}

impl RuntimeMessage for LbMsg {}

/// How a split neighbor of a port is reached: inside the gadget (free) or
/// across the one external edge the port hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitNbr {
    /// Gadget-internal neighbor, by local port index.
    Internal(u32),
    /// The external counterpart across the cluster edge this port hosts.
    External,
}

/// Per-vertex state of [`LoadBalanceProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalanceState {
    /// Token stacks per local port (token = originating global port id).
    tokens: Vec<Vec<u32>>,
    /// Last advertised load of each local port's external counterpart
    /// (`u64::MAX` until the first gossip arrives).
    ext_load: Vec<u64>,
    /// Last load this vertex advertised per local port (delta gossip).
    advertised: Vec<Option<u64>>,
    /// For ports facing the leader: message ids already pushed into the sink
    /// (resending a clone the leader has absorbed is wasted bandwidth, so
    /// unseen tokens are preferred).
    sink_sent: Vec<Vec<bool>>,
    reseeds: u32,
    /// Last round any token moved at this vertex (in, out, or between its
    /// gadget ports) — the local analogue of the metered path's
    /// balanced-fixpoint phase break.
    last_activity: u64,
    /// Leader only: per-global-port delivery flags.
    pub delivered: Vec<bool>,
    /// Leader only: delivered message count (its own included).
    pub delivered_count: u64,
    last_progress: u64,
    stop_sent: bool,
    stop_seen: bool,
    done: bool,
}

/// The Lemma 2.2 load-balancing gatherer as a real message-passing program;
/// executed counterpart of [`crate::load_balance::load_balance_gather`],
/// sized by the same [`LoadBalancePlan`].
#[derive(Debug, Clone)]
pub struct LoadBalanceProgram {
    target: usize,
    f: f64,
    degrees: Vec<usize>,
    total_messages: usize,
    threshold: u64,
    tokens_per_message: usize,
    steps_per_phase: u64,
    max_reseeds: u32,
    reseed_window: u64,
    round_budget: u64,
    /// Global port range start per vertex.
    port_offset: Vec<usize>,
    /// Owner vertex per global port.
    owner: Vec<usize>,
    /// Per vertex, per local port: split neighbors in split-adjacency order.
    nbrs: Vec<Vec<Vec<SplitNbr>>>,
    /// Per vertex: (neighbor vertex, local port facing it), ascending by
    /// neighbor for O(log deg) lookup.
    port_of_nbr: Vec<Vec<(usize, u32)>>,
    /// Per vertex, per local port: whether the external counterpart belongs
    /// to the leader (such ports push unconditionally — the leader drains
    /// its ports every round, so idle sink capacity is pure waste).
    faces_target: Vec<Vec<bool>>,
    num_ports: usize,
}

impl LoadBalanceProgram {
    /// Builds the executed gatherer for `cluster` towards `target`,
    /// tolerating failure fraction `f`, from a shared plan.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range or `plan` was built for a different
    /// cluster.
    pub fn new(cluster: &Graph, target: usize, f: f64, plan: &LoadBalancePlan) -> Self {
        assert!(target < cluster.n().max(1), "target out of range");
        let split = &plan.split;
        let n = cluster.n();
        let num_ports = split.num_ports();
        super::assert_plan_matches(cluster, split);
        let mut nbrs: Vec<Vec<Vec<SplitNbr>>> = (0..n)
            .map(|v| vec![Vec::new(); cluster.degree(v).max(1)])
            .collect();
        let mut port_of_nbr: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        // External pairings: vertex v's local port facing each neighbor.
        let mut ext_of_port: Vec<Option<usize>> = vec![None; num_ports];
        for &((u, v), (pu, pv)) in &split.external {
            ext_of_port[pu] = Some(pv);
            ext_of_port[pv] = Some(pu);
            port_of_nbr[u].push((v, (pu - split.port_offset[u]) as u32));
            port_of_nbr[v].push((u, (pv - split.port_offset[v]) as u32));
        }
        for list in &mut port_of_nbr {
            list.sort_unstable();
        }
        let mut faces_target: Vec<Vec<bool>> = (0..n)
            .map(|v| vec![false; cluster.degree(v).max(1)])
            .collect();
        for v in 0..n {
            let start = split.port_offset[v];
            for lp in 0..cluster.degree(v).max(1) {
                let p = start + lp;
                for &q in split.split.neighbors(p) {
                    if split.owner[q] == v {
                        nbrs[v][lp].push(SplitNbr::Internal((q - start) as u32));
                    } else {
                        debug_assert_eq!(ext_of_port[p], Some(q));
                        nbrs[v][lp].push(SplitNbr::External);
                        faces_target[v][lp] = split.owner[q] == target;
                    }
                }
            }
        }
        let steps = plan.steps_per_phase as u64;
        let max_reseeds = plan.max_phases.min(6) as u32;
        LoadBalanceProgram {
            target,
            f,
            degrees: (0..n).map(|v| cluster.degree(v)).collect(),
            total_messages: 2 * cluster.m(),
            threshold: plan.threshold as u64,
            tokens_per_message: plan.tokens_per_message,
            steps_per_phase: steps,
            max_reseeds,
            // A token crosses a threshold gap within ~Δ⋄ rounds of gossip
            // settling, so 4 thresholds of silence means the neighborhood is
            // genuinely stalled; on large clusters the window scales with the
            // plan's step budget so reseeding stays as patient as the metered
            // phases it mirrors.
            reseed_window: (steps / 8).max(4 * plan.threshold as u64),
            round_budget: 1 + steps * (1 + max_reseeds as u64) + 2 * n as u64,
            port_offset: split.port_offset.clone(),
            owner: split.owner.clone(),
            nbrs,
            port_of_nbr,
            faces_target,
            num_ports,
        }
    }

    fn local_port_facing(&self, v: usize, nbr: usize) -> usize {
        let list = &self.port_of_nbr[v];
        let i = list
            .binary_search_by_key(&nbr, |&(u, _)| u)
            .expect("gossip only arrives from cluster neighbors");
        list[i].1 as usize
    }

    fn seed_own_tokens(&self, v: usize, tokens: &mut [Vec<u32>]) {
        if v == self.target || self.degrees[v] == 0 {
            return;
        }
        let start = self.port_offset[v];
        for (lp, stack) in tokens.iter_mut().enumerate() {
            let global = (start + lp) as u32;
            stack.extend(std::iter::repeat_n(global, self.tokens_per_message));
        }
    }
}

impl NodeProgram for LoadBalanceProgram {
    type State = LoadBalanceState;
    type Msg = LbMsg;

    fn init(&self, ctx: &NodeCtx) -> LoadBalanceState {
        let v = ctx.id;
        let deg = self.degrees[v];
        let is_target = v == self.target;
        let mut tokens = vec![Vec::new(); deg.max(1)];
        self.seed_own_tokens(v, &mut tokens);
        let mut delivered = Vec::new();
        let mut delivered_count = 0;
        if is_target {
            delivered = vec![false; self.num_ports];
            // The leader's own messages never travel.
            let start = self.port_offset[v];
            for flag in &mut delivered[start..start + deg] {
                *flag = true;
            }
            delivered_count = deg as u64;
        }
        LoadBalanceState {
            tokens,
            ext_load: vec![u64::MAX; deg.max(1)],
            advertised: vec![None; deg.max(1)],
            sink_sent: self.faces_target[v]
                .iter()
                .map(|&facing| {
                    if facing {
                        vec![false; self.num_ports]
                    } else {
                        Vec::new()
                    }
                })
                .collect(),
            reseeds: 0,
            last_activity: 0,
            delivered,
            delivered_count,
            last_progress: 0,
            stop_sent: false,
            stop_seen: false,
            done: deg == 0,
        }
    }

    fn round(
        &self,
        ctx: &NodeCtx,
        state: &mut LoadBalanceState,
        inbox: &[Envelope<LbMsg>],
        out: &mut Outbox<'_, LbMsg>,
    ) {
        let v = ctx.id;
        let r = ctx.round;
        let is_target = v == self.target;
        let mut acked = vec![false; state.tokens.len()];
        for env in inbox {
            match env.msg {
                LbMsg::Update { load, token } => {
                    let lp = self.local_port_facing(v, env.src);
                    state.ext_load[lp] = load as u64;
                    if let Some(tok) = token {
                        state.tokens[lp].push(tok);
                        state.last_activity = r;
                        // A token landed here: re-advertise this port even if
                        // its load ends up unchanged (the sender folded the
                        // in-flight token into its view of us and needs the
                        // true value back — without the ack a draining leader
                        // port would look ever fuller to its neighbors).
                        acked[lp] = true;
                    }
                }
                LbMsg::Stop => state.stop_seen = true,
            }
        }

        if state.stop_seen {
            if !state.stop_sent {
                out.broadcast(LbMsg::Stop);
                state.stop_sent = true;
            }
            state.done = true;
            return;
        }

        if is_target {
            // Absorb: any token at a leader port delivers its message, and
            // the token is consumed. Draining keeps the leader's ports at
            // load zero, so they are a permanent gradient sink the balancing
            // rule keeps pushing tokens into — the executed substitute for
            // the metered path's targeted per-phase reseeding, which would
            // need the reverse notification run mid-protocol.
            for stack in &mut state.tokens {
                for tok in stack.drain(..) {
                    let msg = tok as usize;
                    if !state.delivered[msg] {
                        state.delivered[msg] = true;
                        state.delivered_count += 1;
                        state.last_progress = r;
                    }
                }
            }
            let total = self.total_messages as u64;
            let remaining = total - state.delivered_count.min(total);
            let budget_met = total == 0 || (remaining as f64 / total as f64) <= self.f;
            let stalled = r.saturating_sub(state.last_progress) > 2 * self.steps_per_phase;
            if budget_met || stalled {
                out.broadcast(LbMsg::Stop);
                state.stop_sent = true;
                state.done = true;
                return;
            }
        }

        if r >= self.round_budget {
            // Every vertex reads the same round counter, so the whole cluster
            // gives up in lockstep.
            state.done = true;
            return;
        }

        // Local phase boundary: when no token has moved here for a while the
        // neighborhood is balance-stalled (the local analogue of the metered
        // path's `moves.is_empty()` phase break), so reseed this vertex's own
        // messages to re-establish gradients — blind reseeding is a superset
        // of the metered path's undelivered-only reseeding (see module docs).
        if r.saturating_sub(state.last_activity) >= self.reseed_window
            && state.reseeds < self.max_reseeds
            && !is_target
        {
            state.reseeds += 1;
            state.last_activity = r;
            self.seed_own_tokens(v, &mut state.tokens);
        }

        // Balancing moves from a start-of-round snapshot, in the metered
        // path's port-then-neighbor order. Gadget-internal moves are free
        // local work; the external move (at most one per port) rides the
        // gossip message.
        let loads: Vec<u64> = state.tokens.iter().map(|s| s.len() as u64).collect();
        let mut outgoing: Vec<Option<u32>> = vec![None; loads.len()];
        if r >= 2 {
            let mut moves: Vec<(usize, SplitNbr)> = Vec::new();
            for (lp, port_nbrs) in self.nbrs[v].iter().enumerate() {
                if loads[lp] == 0 {
                    continue;
                }
                for &nb in port_nbrs {
                    let (nbr_load, threshold) = match nb {
                        SplitNbr::Internal(q) => (loads[q as usize], self.threshold),
                        // A port facing the leader pushes whenever it holds
                        // anything: the sink drains to zero every round.
                        SplitNbr::External if self.faces_target[v][lp] => (0, 1),
                        SplitNbr::External => (state.ext_load[lp], self.threshold),
                    };
                    if loads[lp] >= nbr_load.saturating_add(threshold) {
                        moves.push((lp, nb));
                    }
                }
            }
            for (lp, nb) in moves {
                let tok = if nb == SplitNbr::External && self.faces_target[v][lp] {
                    // Prefer a token the sink has not seen from this port:
                    // scan from the top of the stack, fall back to the top.
                    let stack = &mut state.tokens[lp];
                    let pick = stack
                        .iter()
                        .rposition(|&t| !state.sink_sent[lp][t as usize])
                        .unwrap_or(stack.len().wrapping_sub(1));
                    if pick >= stack.len() {
                        continue;
                    }
                    let tok = stack.swap_remove(pick);
                    state.sink_sent[lp][tok as usize] = true;
                    Some(tok)
                } else {
                    state.tokens[lp].pop()
                };
                let Some(tok) = tok else {
                    continue;
                };
                state.last_activity = r;
                match nb {
                    SplitNbr::Internal(q) => state.tokens[q as usize].push(tok),
                    SplitNbr::External => {
                        debug_assert!(outgoing[lp].is_none());
                        outgoing[lp] = Some(tok);
                        // The counterpart is about to gain this token;
                        // folding it into the stale view now stops the edge
                        // from re-firing on the same gradient next round.
                        state.ext_load[lp] = state.ext_load[lp].saturating_add(1);
                    }
                }
            }
        }

        // Gossip: advertise a port's post-move load whenever it changed or a
        // token crosses (delta gossip keeps the message count proportional to
        // actual balancing activity, not to wall-clock rounds).
        for (nbr_vertex, lp) in self.port_of_nbr[v].iter().map(|&(u, lp)| (u, lp as usize)) {
            let load = (state.tokens[lp].len() as u64).min(u32::MAX as u64);
            let token = outgoing[lp];
            if token.is_some() || acked[lp] || state.advertised[lp] != Some(load) {
                out.send(
                    nbr_vertex,
                    LbMsg::Update {
                        load: load as u32,
                        token,
                    },
                );
                state.advertised[lp] = Some(load);
            }
        }
    }

    fn halted(&self, _ctx: &NodeCtx, state: &LoadBalanceState) -> bool {
        state.done
    }

    fn round_budget_hint(&self) -> Option<u64> {
        Some(self.round_budget + 2 * self.degrees.len() as u64 + 8)
    }
}

impl GatherProgram for LoadBalanceProgram {
    fn strategy_name(&self) -> &'static str {
        "load-balance"
    }

    fn total_messages(&self) -> usize {
        self.total_messages
    }

    fn per_vertex_delivered(&self, states: &[LoadBalanceState]) -> Vec<usize> {
        let mut per_vertex = vec![0usize; self.degrees.len()];
        if let Some(target_state) = states.get(self.target) {
            for (p, &d) in target_state.delivered.iter().enumerate() {
                let v = self.owner[p];
                if d && self.degrees[v] > 0 {
                    per_vertex[v] += 1;
                }
            }
        }
        per_vertex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_balance::{load_balance_gather_with_plan, LoadBalanceParams};
    use mfd_congest::RoundMeter;
    use mfd_graph::generators;
    use mfd_runtime::ExecutorConfig;

    fn run(g: &Graph, target: usize, f: f64) -> super::super::ExecutedGather {
        let plan = LoadBalancePlan::new(g, &LoadBalanceParams::default());
        let program = LoadBalanceProgram::new(g, target, f, &plan);
        super::super::execute_gather(g, &program, &ExecutorConfig::default())
            .unwrap()
            .0
    }

    #[test]
    fn delivers_within_budget_on_expanders() {
        for (g, f) in [
            (generators::complete(8), 0.05),
            (generators::hypercube(4), 0.1),
            (generators::wheel(32), 0.1),
        ] {
            let report = run(&g, 0, f);
            assert!(
                report.delivered_fraction >= 1.0 - f,
                "delivered {} on n={} m={}",
                report.delivered_fraction,
                g.n(),
                g.m()
            );
            assert_eq!(report.total_messages, 2 * g.m());
        }
    }

    #[test]
    fn executed_rounds_fit_the_metered_charge() {
        for g in [
            generators::complete(8),
            generators::hypercube(4),
            generators::wheel(32),
        ] {
            let f = 0.1;
            let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
            let mut meter = RoundMeter::new();
            let charged = load_balance_gather_with_plan(&g, 0, f, &plan, &mut meter);
            let report = run(&g, 0, f);
            assert!(
                report.rounds <= charged.rounds,
                "executed {} > charged {} on n={}",
                report.rounds,
                charged.rounds,
                g.n()
            );
            assert!(report.delivered_fraction >= charged.delivered_fraction.min(1.0 - f));
        }
    }

    #[test]
    fn leader_messages_count_as_delivered() {
        let g = generators::star(6);
        let report = run(&g, 0, 0.5);
        assert_eq!(report.per_vertex_delivered[0], 5);
        assert!(report.delivered_fraction >= 0.5);
    }

    #[test]
    fn empty_cluster_is_free() {
        let g = Graph::new(3);
        let report = run(&g, 0, 0.1);
        assert_eq!(report.rounds, 0);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    }
}
