//! The executed BFS-tree pipelined gather.
//!
//! Protocol (all phases overlap — deep vertices upcast while the BFS wave is
//! still spreading below them, and the leader echoes answers while the gather
//! is still draining):
//!
//! 1. **Wave** — the leader floods depth announcements; a vertex adopts the
//!    smallest announcing neighbor as parent (exactly the
//!    [`mfd_congest::primitives::build_bfs_tree`] parent rule), answers the
//!    parent with an `Adopt`, and forwards the wave. Hearing `Announce` or
//!    `Adopt` from every neighbor classifies them all as parent, sibling or
//!    child.
//! 2. **Upcast** — every vertex holds `deg(v)` unit messages; each round a
//!    vertex with pending messages forwards one to its parent (one word per
//!    tree edge per round — the CONGEST-width pipeline). Termination is
//!    in-band: the final message carries a `last` flag once all children have
//!    reported their subtrees complete (or a bare `Done` if the flag has no
//!    message left to ride on).
//! 3. **Echo** — the leader bounces every received message straight back down
//!    the edge it arrived on; an inner vertex keeps the first `deg(v)`
//!    answers for itself and forwards the rest to its children, each of which
//!    is owed exactly as many answers as it sent up. A vertex halts when its
//!    subtree is drained and its answers have arrived, so the program
//!    terminates without any extra control round.
//!
//! On a connected cluster the executed round count lands inside the metered
//! [`crate::gather::tree_gather`] charge (BFS + pipelined upcast + pipelined
//! downcast) because the three phases overlap here and run sequentially
//! there. On a disconnected cluster only the leader's component gathers;
//! unreached vertices sit quiescent (the executor's fixpoint break ends the
//! run) or time out after `n` rounds (the `mfd-sim` engine), the same
//! deliberate trade [`mfd_core`-style BFS programs] make.

use mfd_graph::Graph;
use mfd_runtime::{Envelope, NodeCtx, NodeProgram, Outbox, RuntimeMessage};

use super::GatherProgram;

/// Message vocabulary of the tree gather. Every variant fits one O(log n)-bit
/// CONGEST word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMsg {
    /// BFS wave: the sender's depth.
    Announce(u32),
    /// The sender adopted the receiver as its BFS parent.
    Adopt,
    /// One unit message moving towards the leader; `last` marks the sender's
    /// subtree as completely drained. The per-edge sequence number (an
    /// O(log n)-bit counter riding the same CONGEST word) lets receivers
    /// reject the duplicated or stale copies fault models inject — upcast
    /// receipts feed the leader-honest delivered metric, which must never
    /// over-report.
    Up {
        /// Position in the sender's upcast stream on this edge.
        seq: u32,
        /// Whether this is the sender's final upcast message.
        last: bool,
    },
    /// The sender's subtree is drained and no message is left to carry the
    /// flag.
    Done,
    /// One unit answer moving away from the leader.
    Down,
}

impl RuntimeMessage for TreeMsg {}

/// Per-vertex state of [`TreeGatherProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGatherState {
    /// BFS depth, once the wave arrives (0 at the leader).
    pub depth: Option<u32>,
    /// BFS parent (`None` for the leader and unreached vertices).
    pub parent: Option<usize>,
    /// Unit messages received back from the leader (== `deg(v)` on
    /// completion).
    pub self_received: u64,
    announced: bool,
    resolved: usize,
    /// Neighbors whose wave message (`Announce`/`Adopt`) was processed,
    /// sorted — duplicates injected by fault models classify nobody twice.
    classified: Vec<usize>,
    /// Adopted children, ascending (all `Adopt`s arrive in one round).
    children: Vec<usize>,
    /// Messages received from each child (the echo quota owed back to it).
    up_from: Vec<u64>,
    /// Per child: high-water mark of accepted upcast sequence numbers
    /// (next acceptable `seq`); duplicates and stale slipped copies fall
    /// below it and are ignored.
    up_next: Vec<u32>,
    child_done: Vec<bool>,
    pending_up: u64,
    /// Sequence number of this vertex's next upcast message.
    up_seq: u32,
    sent_done: bool,
    down_assigned: Vec<u64>,
    down_sent: Vec<u64>,
    done: bool,
}

impl TreeGatherState {
    /// Slot of `v` among the adopted children, or `None` for a sender this
    /// vertex never adopted. On a reliable network the `None` case is
    /// unreachable (up/done traffic only arrives from adopted children); on
    /// a faulty one a dropped `Adopt` makes it real, and the receiver's only
    /// sound move is to ignore the orphaned traffic — the degradation the
    /// fault experiments measure.
    fn child_index(&self, v: usize) -> Option<usize> {
        self.children.binary_search(&v).ok()
    }

    /// Registers a wave message from `v`; `false` for a duplicate.
    fn classify(&mut self, v: usize) -> bool {
        match self.classified.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.classified.insert(pos, v);
                self.resolved += 1;
                true
            }
        }
    }

    fn subtree_ready(&self, degree: usize) -> bool {
        self.resolved == degree && self.child_done.iter().all(|&d| d)
    }

    fn echo_complete(&self) -> bool {
        self.down_sent
            .iter()
            .zip(&self.up_from)
            .all(|(sent, quota)| sent == quota)
    }
}

/// The BFS-tree pipelined gather as a real message-passing program; executed
/// counterpart of [`crate::gather::tree_gather`].
#[derive(Debug, Clone)]
pub struct TreeGatherProgram {
    root: usize,
    degrees: Vec<usize>,
    total_messages: usize,
    budget: u64,
}

impl TreeGatherProgram {
    /// Builds the program gathering `deg(v)` messages from every vertex of
    /// `cluster` to `leader` (and echoing answers back).
    ///
    /// # Panics
    ///
    /// Panics if `leader` is out of range.
    pub fn new(cluster: &Graph, leader: usize) -> Self {
        assert!(leader < cluster.n().max(1), "leader out of range");
        let n = cluster.n() as u64;
        let m = cluster.m() as u64;
        TreeGatherProgram {
            root: leader,
            degrees: (0..cluster.n()).map(|v| cluster.degree(v)).collect(),
            total_messages: 2 * cluster.m(),
            // Wave + upcast + echo each fit in n + 2m rounds; 4× covers their
            // (already overlapped) sum with room for the control tail.
            budget: 4 * (n + 2 * m) + 16,
        }
    }
}

impl NodeProgram for TreeGatherProgram {
    type State = TreeGatherState;
    type Msg = TreeMsg;

    fn init(&self, ctx: &NodeCtx) -> TreeGatherState {
        let is_root = ctx.id == self.root;
        let deg = ctx.degree();
        TreeGatherState {
            depth: is_root.then_some(0),
            parent: None,
            announced: false,
            resolved: 0,
            classified: Vec::new(),
            children: Vec::new(),
            up_from: Vec::new(),
            up_next: Vec::new(),
            child_done: Vec::new(),
            pending_up: if is_root { 0 } else { deg as u64 },
            up_seq: 0,
            sent_done: false,
            down_assigned: Vec::new(),
            down_sent: Vec::new(),
            // The leader's own messages never travel.
            self_received: if is_root { deg as u64 } else { 0 },
            // Isolated vertices (including an isolated leader) have nothing
            // to gather.
            done: deg == 0,
        }
    }

    fn round(
        &self,
        ctx: &NodeCtx,
        state: &mut TreeGatherState,
        inbox: &[Envelope<TreeMsg>],
        out: &mut Outbox<'_, TreeMsg>,
    ) {
        let was_announced = state.announced;
        for env in inbox {
            match env.msg {
                // A wave message classifies its sender exactly once; a
                // duplicated copy (fault injection) must not count twice.
                TreeMsg::Announce(d) => {
                    if state.classify(env.src) && state.depth.is_none() {
                        // The inbox is sorted by sender, so the first
                        // announcement is the smallest-id neighbor one
                        // level up — the build_bfs_tree parent rule.
                        state.depth = Some(d + 1);
                        state.parent = Some(env.src);
                    }
                }
                TreeMsg::Adopt => {
                    if state.classify(env.src) {
                        // Keep the per-child vectors aligned and sorted even
                        // if a slipped adoption arrives out of order.
                        let pos = state.children.binary_search(&env.src).unwrap_err();
                        state.children.insert(pos, env.src);
                        state.up_from.insert(pos, 0);
                        state.up_next.insert(pos, 0);
                        state.child_done.insert(pos, false);
                        state.down_assigned.insert(pos, 0);
                        state.down_sent.insert(pos, 0);
                    }
                }
                TreeMsg::Up { seq, last } => {
                    let Some(i) = state.child_index(env.src) else {
                        continue; // orphaned by a lost Adopt
                    };
                    if seq < state.up_next[i] {
                        continue; // duplicated or stale slipped copy
                    }
                    state.up_next[i] = seq + 1;
                    state.up_from[i] += 1;
                    if ctx.id == self.root {
                        // The leader bounces every message straight back.
                        state.down_assigned[i] += 1;
                    } else {
                        state.pending_up += 1;
                    }
                    if last {
                        state.child_done[i] = true;
                    }
                }
                TreeMsg::Done => {
                    if let Some(i) = state.child_index(env.src) {
                        state.child_done[i] = true;
                    }
                }
                TreeMsg::Down => {
                    if state.self_received < ctx.degree() as u64 {
                        state.self_received += 1;
                    } else {
                        // A duplicated answer can arrive with every quota
                        // already filled; it has no owner and is dropped.
                        let _fed = state.down_assigned.iter_mut().zip(&state.up_from).any(
                            |(assigned, quota)| {
                                if *assigned < *quota {
                                    *assigned += 1;
                                    true
                                } else {
                                    false
                                }
                            },
                        );
                    }
                }
            }
        }

        let Some(depth) = state.depth else {
            // Not reached yet. No wave takes longer than n rounds, so after
            // that the vertex is provably outside the leader's component.
            if ctx.round > ctx.n as u64 {
                state.done = true;
            }
            return;
        };

        if !was_announced {
            // Adoption round (round 1 at the leader): join the wave. The
            // parent edge carries the adoption instead of an announcement.
            state.announced = true;
            for &u in ctx.neighbors {
                if state.parent == Some(u) {
                    out.send(u, TreeMsg::Adopt);
                } else {
                    out.send(u, TreeMsg::Announce(depth));
                }
            }
        } else {
            // Upcast: one pipelined message per round towards the leader,
            // with the done flag riding on the last one.
            if let Some(p) = state.parent {
                if !state.sent_done {
                    let ready = state.subtree_ready(ctx.degree());
                    if state.pending_up > 0 {
                        let last = state.pending_up == 1 && ready;
                        let seq = state.up_seq;
                        state.up_seq += 1;
                        out.send(p, TreeMsg::Up { seq, last });
                        state.pending_up -= 1;
                        if last {
                            state.sent_done = true;
                        }
                    } else if ready {
                        out.send(p, TreeMsg::Done);
                        state.sent_done = true;
                    }
                }
            }
            // Echo: child edges are disjoint, so every owed child advances in
            // parallel, one answer per edge per round.
            for i in 0..state.children.len() {
                if state.down_sent[i] < state.down_assigned[i] {
                    out.send(state.children[i], TreeMsg::Down);
                    state.down_sent[i] += 1;
                }
            }
        }

        state.done = if ctx.id == self.root {
            state.subtree_ready(ctx.degree()) && state.echo_complete()
        } else {
            state.sent_done && state.self_received == ctx.degree() as u64 && state.echo_complete()
        };
    }

    fn halted(&self, _ctx: &NodeCtx, state: &TreeGatherState) -> bool {
        state.done
    }

    fn round_budget_hint(&self) -> Option<u64> {
        Some(self.budget + 8)
    }

    /// A vertex the wave has not reached is pure frontier-waiting, the same
    /// deliberate timeout-vs-fixpoint trade `mfd_core::programs::BfsProgram`
    /// documents: on disconnected clusters the executor ends at the fixpoint
    /// while the simulator runs the `round > n` timeout; public outputs
    /// agree everywhere.
    fn quiescent(&self, _ctx: &NodeCtx, state: &TreeGatherState) -> bool {
        state.depth.is_none()
    }
}

impl GatherProgram for TreeGatherProgram {
    fn strategy_name(&self) -> &'static str {
        "tree-pipeline"
    }

    fn total_messages(&self) -> usize {
        self.total_messages
    }

    fn per_vertex_delivered(&self, states: &[TreeGatherState]) -> Vec<usize> {
        states
            .iter()
            .enumerate()
            .map(|(v, s)| {
                if s.depth.is_some() {
                    self.degrees[v]
                } else {
                    0
                }
            })
            .collect()
    }

    /// The per-vertex counts above are source-side (wave coverage — exact on
    /// completed runs, where the pipeline provably drains); under fault
    /// injection the honest number is what the leader actually heard: its
    /// children's upcast messages plus its own `deg` that never travel.
    /// Upcast sequence numbers make each receipt count at most once, so
    /// this can never exceed the total — deliberately unclamped, so any
    /// over-counting bug would surface as a fraction above one.
    fn leader_received(&self, states: &[TreeGatherState]) -> u64 {
        states.get(self.root).map_or(0, |s| {
            let from_children: u64 = s.up_from.iter().sum();
            from_children + self.degrees[self.root] as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_congest::RoundMeter;
    use mfd_graph::generators;
    use mfd_runtime::{Executor, ExecutorConfig};

    fn run(g: &Graph, leader: usize) -> (super::super::ExecutedGather, Vec<TreeGatherState>) {
        let program = TreeGatherProgram::new(g, leader);
        let (report, exec) =
            super::super::execute_gather(g, &program, &ExecutorConfig::default()).unwrap();
        (report, exec.states)
    }

    #[test]
    fn gathers_and_echoes_everything_on_a_path() {
        let g = generators::path(6);
        let (report, states) = run(&g, 0);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
        assert_eq!(report.total_messages, 2 * g.m());
        for (v, s) in states.iter().enumerate() {
            assert_eq!(s.self_received, g.degree(v) as u64, "vertex {v}");
        }
    }

    #[test]
    fn executed_rounds_fit_the_metered_charge() {
        for (g, leader) in [
            (generators::triangulated_grid(8, 8), 0),
            (generators::wheel(64), 0),
            (generators::hypercube(5), 0),
            (generators::path(40), 0),
            (generators::star(30), 0),
        ] {
            let mut meter = RoundMeter::new();
            let charged = crate::gather::tree_gather(&g, leader, &mut meter);
            let (report, _) = run(&g, leader);
            assert!(
                report.rounds <= charged.rounds,
                "executed {} > charged {} on n={} m={}",
                report.rounds,
                charged.rounds,
                g.n(),
                g.m()
            );
            assert!((report.delivered_fraction - charged.delivered_fraction).abs() < 1e-12);
            assert_eq!(report.per_vertex_delivered, charged.per_vertex_delivered);
        }
    }

    #[test]
    fn parents_match_the_metered_bfs_tree() {
        let g = generators::triangulated_grid(5, 7);
        let mut meter = RoundMeter::new();
        let tree = mfd_congest::primitives::build_bfs_tree(&g, None, 3, &mut meter);
        let program = TreeGatherProgram::new(&g, 3);
        let exec = Executor::new(ExecutorConfig::default())
            .run(&g, &program)
            .unwrap();
        for v in 0..g.n() {
            let expected = (tree.parent[v] != usize::MAX).then_some(tree.parent[v]);
            assert_eq!(exec.states[v].parent, expected, "vertex {v}");
            assert_eq!(
                exec.states[v].depth.map(|d| d as usize),
                (tree.depth[v] != usize::MAX).then_some(tree.depth[v])
            );
        }
    }

    #[test]
    fn disconnected_cluster_gathers_the_leader_component_only() {
        let g = generators::path(4).disjoint_union(&generators::cycle(3));
        let (report, states) = run(&g, 0);
        assert!(states[..4].iter().all(|s| s.depth.is_some()));
        assert!(states[4..].iter().all(|s| s.depth.is_none()));
        let delivered: usize = report.per_vertex_delivered.iter().sum();
        assert_eq!(delivered, 2 * 3); // the path's 2m
    }

    #[test]
    fn empty_and_isolated_clusters_are_free() {
        let g = Graph::new(4);
        let (report, _) = run(&g, 0);
        assert_eq!(report.rounds, 0);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    }
}
