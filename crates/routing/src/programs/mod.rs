//! The §2 gather strategies as *executed* message-passing programs.
//!
//! Everything else in this crate is **metered**: a centralized computation
//! that simulates the communication pattern and charges rounds on a
//! [`mfd_congest::RoundMeter`]. The programs in this module are the
//! **executed** counterparts — genuine [`mfd_runtime::NodeProgram`]s whose
//! vertices only ever see their own state and their inboxes, runnable
//! unmodified on the synchronous [`mfd_runtime::Executor`] and on the
//! `mfd-sim` discrete-event engine:
//!
//! * [`TreeGatherProgram`] ⇔ [`crate::gather::tree_gather`] — BFS-tree
//!   construction by flooding, pipelined convergecast of `deg(v)` unit
//!   messages per vertex with in-band termination detection, and a pipelined
//!   echo that distributes the answers back down the tree.
//! * [`LoadBalanceProgram`] ⇔ [`crate::load_balance::load_balance_gather`] —
//!   the Lemma 2.2 token balancing on the expander split, with per-edge load
//!   gossip packed into the same O(log n)-bit message that carries a moving
//!   token, sized by the shared [`crate::load_balance::LoadBalancePlan`].
//! * [`WalkScheduleProgram`] ⇔ [`crate::walks::execute_walk_gather`] —
//!   store-and-forward token routing along the walk trajectories of a
//!   [`crate::walks::WalkPlan`], released by a schedule-broadcast wave and
//!   terminated by a stop wave from the leader.
//!
//! # Metered vs executed accounting
//!
//! The metered paths *charge* the paper's round bounds; the executed programs
//! *spend* rounds, one per synchronous step, policed by the engines'
//! [`mfd_congest::RoundMeter`] (one O(log n)-bit word per edge per direction
//! per round). The differential contract, validated by the integration tests
//! and the `report gather` benchmark section, is:
//!
//! * **rounds**: executed ≤ charged. The metered bound includes the reverse
//!   notification run (`charge_reverse`, on by default); the executed
//!   programs overlap their phases (tokens start flowing while the BFS wave
//!   is still spreading, answers are echoed while the gather is still
//!   draining) and terminate by in-band detection, so they land well inside
//!   the charged budget on every acceptance family.
//! * **delivered fraction**: executed ≥ the metered guarantee. The tree
//!   pipeline delivers everything; the walk schedule delivers *exactly* the
//!   planned good set (both engines route the same trajectories); the load
//!   balancer runs the same token budgets with one-round-stale neighbor
//!   loads, which the `2Δ⋄ + 1` threshold absorbs.
//! * **messages**: executed counts are reported next to the charged counts in
//!   `BENCH_gather.json`. The executed programs pay for what the metered
//!   paths idealize away (parent adoption, done markers, load gossip), so
//!   their message counts sit above the charged ones by design; CI's
//!   regression gate pins both.

use mfd_graph::{properties, Graph};
use mfd_runtime::{Execution, Executor, ExecutorConfig, NodeProgram, RuntimeError};

use crate::load_balance::{LoadBalanceParams, LoadBalancePlan};

mod load_balance;
mod tree;
mod walks;

pub use load_balance::{LoadBalanceProgram, LoadBalanceState};
pub use tree::{TreeGatherProgram, TreeGatherState};
pub use walks::{WalkScheduleProgram, WalkScheduleState};

/// Outcome of one executed gather, in the vocabulary of
/// [`crate::gather::GatherReport`] so the two modes compare directly.
#[derive(Debug, Clone)]
pub struct ExecutedGather {
    /// Rounds actually executed (and validated) by the engine.
    pub rounds: u64,
    /// Program messages actually delivered.
    pub messages: u64,
    /// Fraction of the `2|E(S)|` messages delivered to the leader.
    pub delivered_fraction: f64,
    /// Delivered message count per cluster vertex.
    pub per_vertex_delivered: Vec<usize>,
    /// Total number of gatherable messages.
    pub total_messages: usize,
    /// Strategy name (matches the metered report's).
    pub strategy: &'static str,
}

/// Common reporting surface of the three gather programs.
///
/// The extraction is a pure function of the final states, so it applies to
/// any engine's output: pass `Execution::states` from the synchronous
/// executor or `SimExecution::states` from `mfd-sim`.
pub trait GatherProgram: NodeProgram {
    /// Strategy name, matching the metered [`crate::gather::GatherReport`].
    fn strategy_name(&self) -> &'static str;

    /// Total number of gatherable messages (`2|E|` of the cluster).
    fn total_messages(&self) -> usize;

    /// Per-vertex delivered counts, extracted from the final states.
    fn per_vertex_delivered(&self, states: &[Self::State]) -> Vec<usize>;

    /// Unit messages that *physically reached the leader*, extracted from
    /// the final states.
    ///
    /// On completed fault-free runs this equals the summed per-vertex counts
    /// (the default). The distinction matters to the fault experiments: a
    /// run starved by injected losses leaves source-side bookkeeping (e.g.
    /// the tree wave's coverage) looking complete while the leader-side
    /// truth is not — implementations whose per-vertex counts are
    /// source-side override this with the leader's own receipts.
    fn leader_received(&self, states: &[Self::State]) -> u64 {
        self.per_vertex_delivered(states).iter().sum::<usize>() as u64
    }

    /// Packages an engine's output as an [`ExecutedGather`].
    fn executed_report(
        &self,
        states: &[Self::State],
        rounds: u64,
        messages: u64,
    ) -> ExecutedGather {
        let per_vertex_delivered = self.per_vertex_delivered(states);
        let delivered: usize = per_vertex_delivered.iter().sum();
        let total_messages = self.total_messages();
        ExecutedGather {
            rounds,
            messages,
            delivered_fraction: if total_messages == 0 {
                1.0
            } else {
                delivered as f64 / total_messages as f64
            },
            per_vertex_delivered,
            total_messages,
            strategy: self.strategy_name(),
        }
    }
}

/// Asserts that a plan's expander split was built for exactly this cluster:
/// the per-vertex port ranges must reproduce the cluster's degree sequence
/// (a total-count check alone would accept any graph with the same degree
/// sum and then build garbage routing tables).
pub(crate) fn assert_plan_matches(cluster: &Graph, split: &crate::split::ExpanderSplit) {
    assert_eq!(
        split.port_offset.len(),
        cluster.n(),
        "plan does not match the cluster"
    );
    let mut expected = 0usize;
    for v in 0..cluster.n() {
        assert_eq!(
            split.port_offset[v], expected,
            "plan does not match the cluster"
        );
        expected += cluster.degree(v).max(1);
    }
    assert_eq!(
        split.num_ports(),
        expected,
        "plan does not match the cluster"
    );
}

/// Conductance below which a grid-like cluster's token balancer end-game is
/// known to be reseed-window sensitive (φ ≲ 0.07 — the tri-grid-10x10
/// overrun the ROADMAP documents, whose sweep-cut estimate sits at ≈ 0.073);
/// [`select_gather_program`] routes such clusters to the tree pipeline. The
/// nearest keep-the-balancer families are comfortably above (tri-grid-8x8
/// ≈ 0.093, hypercube-6 ≈ 0.31).
pub const TREE_ROUTE_PHI: f64 = 0.08;

/// An executed gather program chosen by [`select_gather_program`].
#[derive(Debug, Clone)]
pub enum SelectedGather {
    /// The tree pipeline: always delivers everything; the right call on
    /// low-conductance clusters whose leader is no hub.
    Tree(TreeGatherProgram),
    /// The Lemma 2.2 token balancer (boxed: it carries its whole plan).
    LoadBalance(Box<LoadBalanceProgram>),
}

impl SelectedGather {
    /// Strategy name of the chosen program.
    pub fn strategy_name(&self) -> &'static str {
        match self {
            SelectedGather::Tree(p) => p.strategy_name(),
            SelectedGather::LoadBalance(p) => p.strategy_name(),
        }
    }

    /// Runs the chosen program on the synchronous executor and reports it.
    ///
    /// # Errors
    ///
    /// Propagates any [`RuntimeError`] from the executor.
    pub fn execute(
        &self,
        cluster: &Graph,
        config: &ExecutorConfig,
    ) -> Result<ExecutedGather, RuntimeError> {
        match self {
            SelectedGather::Tree(p) => execute_gather(cluster, p, config).map(|(r, _)| r),
            SelectedGather::LoadBalance(p) => {
                execute_gather(cluster, p.as_ref(), config).map(|(r, _)| r)
            }
        }
    }
}

/// A cheap conductance estimate: exact on small clusters, spectral sweep
/// (an upper bound on φ) otherwise, 1.0 when neither applies.
fn conductance_estimate(cluster: &Graph) -> f64 {
    properties::conductance_exact(cluster)
        .or_else(|| properties::spectral_sweep_cut(cluster, 80).map(|c| c.conductance))
        .unwrap_or(1.0)
}

/// Picks the executed gather program for a cluster that would otherwise run
/// the load balancer: low-conductance (φ ≲ [`TREE_ROUTE_PHI`]) clusters
/// whose leader has no hub degree (`deg(leader)² ≤ n`) are routed to
/// [`TreeGatherProgram`] — on such grid-like clusters the balancer's
/// end-game is reseed-window sensitive while the tree pipeline is both
/// cheaper and complete; everything else gets [`LoadBalanceProgram`] sized
/// by a fresh [`LoadBalancePlan`].
///
/// # Panics
///
/// Panics if `leader` is out of range.
pub fn select_gather_program(
    cluster: &Graph,
    leader: usize,
    f: f64,
    params: &LoadBalanceParams,
) -> SelectedGather {
    assert!(leader < cluster.n().max(1), "leader out of range");
    let hub_degree = cluster.degree(leader).pow(2) > cluster.n();
    if !hub_degree && conductance_estimate(cluster) < TREE_ROUTE_PHI {
        SelectedGather::Tree(TreeGatherProgram::new(cluster, leader))
    } else {
        let plan = LoadBalancePlan::new(cluster, params);
        SelectedGather::LoadBalance(Box::new(LoadBalanceProgram::new(cluster, leader, f, &plan)))
    }
}

/// Runs a gather program on the synchronous executor and reports it.
///
/// # Errors
///
/// Propagates any [`RuntimeError`] from the executor.
pub fn execute_gather<P: GatherProgram>(
    cluster: &Graph,
    program: &P,
    config: &ExecutorConfig,
) -> Result<(ExecutedGather, Execution<P::State>), RuntimeError> {
    let run = Executor::new(config.clone()).run(cluster, program)?;
    let report = program.executed_report(&run.states, run.rounds, run.messages);
    Ok((report, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_congest::RoundMeter;
    use mfd_graph::generators;

    /// The ROADMAP-documented sensitivity: tri-grid-10x10's token-balancer
    /// end-game overruns the charge, so selection must route it (and its
    /// grid siblings) to the tree pipeline, whose executed rounds are pinned
    /// against the metered charge.
    #[test]
    fn selection_routes_low_conductance_grids_to_the_tree_pipeline() {
        for (rows, cols) in [(10, 10), (12, 12)] {
            let g = generators::triangulated_grid(rows, cols);
            let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
            let sel = select_gather_program(&g, leader, 0.1, &LoadBalanceParams::default());
            assert_eq!(sel.strategy_name(), "tree-pipeline", "{rows}x{cols}");
            let mut meter = RoundMeter::new();
            let charged = crate::gather::tree_gather(&g, leader, &mut meter);
            let report = sel.execute(&g, &ExecutorConfig::default()).unwrap();
            assert!(
                report.rounds <= charged.rounds,
                "{rows}x{cols}: executed {} > charged {}",
                report.rounds,
                charged.rounds
            );
            assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn selection_keeps_hubs_and_expanders_on_the_balancer() {
        // The wheel's leader is a Θ(n)-degree hub; the hypercube is a
        // bona-fide expander (φ ≈ 0.31) — both stay on Lemma 2.2, and both
        // deliver within the failure budget.
        for (name, g) in [
            ("wheel-64", generators::wheel(64)),
            ("hypercube-6", generators::hypercube(6)),
        ] {
            let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
            let f = 0.1;
            let sel = select_gather_program(&g, leader, f, &LoadBalanceParams::default());
            assert_eq!(sel.strategy_name(), "load-balance", "{name}");
            let report = sel.execute(&g, &ExecutorConfig::default()).unwrap();
            assert!(
                report.delivered_fraction >= 1.0 - f,
                "{name}: delivered {}",
                report.delivered_fraction
            );
        }
    }
}
