//! The §2 gather strategies as *executed* message-passing programs.
//!
//! Everything else in this crate is **metered**: a centralized computation
//! that simulates the communication pattern and charges rounds on a
//! [`mfd_congest::RoundMeter`]. The programs in this module are the
//! **executed** counterparts — genuine [`mfd_runtime::NodeProgram`]s whose
//! vertices only ever see their own state and their inboxes, runnable
//! unmodified on the synchronous [`mfd_runtime::Executor`] and on the
//! `mfd-sim` discrete-event engine:
//!
//! * [`TreeGatherProgram`] ⇔ [`crate::gather::tree_gather`] — BFS-tree
//!   construction by flooding, pipelined convergecast of `deg(v)` unit
//!   messages per vertex with in-band termination detection, and a pipelined
//!   echo that distributes the answers back down the tree.
//! * [`LoadBalanceProgram`] ⇔ [`crate::load_balance::load_balance_gather`] —
//!   the Lemma 2.2 token balancing on the expander split, with per-edge load
//!   gossip packed into the same O(log n)-bit message that carries a moving
//!   token, sized by the shared [`crate::load_balance::LoadBalancePlan`].
//! * [`WalkScheduleProgram`] ⇔ [`crate::walks::execute_walk_gather`] —
//!   store-and-forward token routing along the walk trajectories of a
//!   [`crate::walks::WalkPlan`], released by a schedule-broadcast wave and
//!   terminated by a stop wave from the leader.
//!
//! # Metered vs executed accounting
//!
//! The metered paths *charge* the paper's round bounds; the executed programs
//! *spend* rounds, one per synchronous step, policed by the engines'
//! [`mfd_congest::RoundMeter`] (one O(log n)-bit word per edge per direction
//! per round). The differential contract, validated by the integration tests
//! and the `report gather` benchmark section, is:
//!
//! * **rounds**: executed ≤ charged. The metered bound includes the reverse
//!   notification run (`charge_reverse`, on by default); the executed
//!   programs overlap their phases (tokens start flowing while the BFS wave
//!   is still spreading, answers are echoed while the gather is still
//!   draining) and terminate by in-band detection, so they land well inside
//!   the charged budget on every acceptance family.
//! * **delivered fraction**: executed ≥ the metered guarantee. The tree
//!   pipeline delivers everything; the walk schedule delivers *exactly* the
//!   planned good set (both engines route the same trajectories); the load
//!   balancer runs the same token budgets with one-round-stale neighbor
//!   loads, which the `2Δ⋄ + 1` threshold absorbs.
//! * **messages**: executed counts are reported next to the charged counts in
//!   `BENCH_gather.json`. The executed programs pay for what the metered
//!   paths idealize away (parent adoption, done markers, load gossip), so
//!   their message counts sit above the charged ones by design; CI's
//!   regression gate pins both.

use mfd_graph::{properties, Graph};
use mfd_runtime::{
    Envelope, Execution, Executor, ExecutorConfig, NodeCtx, NodeProgram, Outbox, RuntimeError,
    RuntimeMessage,
};

use crate::gather::GatherStrategy;
use crate::load_balance::{LoadBalanceParams, LoadBalancePlan};
use crate::walks::plan_walk_schedule;

mod load_balance;
mod tree;
mod walks;

pub use load_balance::{LbMsg, LoadBalanceProgram, LoadBalanceState};
pub use tree::{TreeGatherProgram, TreeGatherState, TreeMsg};
pub use walks::{WalkMsg, WalkScheduleProgram, WalkScheduleState};

/// Outcome of one executed gather, in the vocabulary of
/// [`crate::gather::GatherReport`] so the two modes compare directly.
#[derive(Debug, Clone)]
pub struct ExecutedGather {
    /// Rounds actually executed (and validated) by the engine.
    pub rounds: u64,
    /// Program messages actually delivered.
    pub messages: u64,
    /// Fraction of the `2|E(S)|` messages delivered to the leader.
    pub delivered_fraction: f64,
    /// Delivered message count per cluster vertex.
    pub per_vertex_delivered: Vec<usize>,
    /// Total number of gatherable messages.
    pub total_messages: usize,
    /// Strategy name (matches the metered report's).
    pub strategy: &'static str,
}

impl From<ExecutedGather> for crate::gather::GatherReport {
    /// Repackages an executed run in the metered report vocabulary (the
    /// engine-only `messages` count has no metered counterpart and is
    /// dropped; it lives on the meters).
    fn from(executed: ExecutedGather) -> Self {
        crate::gather::GatherReport {
            rounds: executed.rounds,
            delivered_fraction: executed.delivered_fraction,
            per_vertex_delivered: executed.per_vertex_delivered,
            total_messages: executed.total_messages,
            strategy: executed.strategy,
        }
    }
}

/// Common reporting surface of the three gather programs.
///
/// The extraction is a pure function of the final states, so it applies to
/// any engine's output: pass `Execution::states` from the synchronous
/// executor or `SimExecution::states` from `mfd-sim`.
pub trait GatherProgram: NodeProgram {
    /// Strategy name, matching the metered [`crate::gather::GatherReport`].
    fn strategy_name(&self) -> &'static str;

    /// Total number of gatherable messages (`2|E|` of the cluster).
    fn total_messages(&self) -> usize;

    /// Per-vertex delivered counts, extracted from the final states.
    fn per_vertex_delivered(&self, states: &[Self::State]) -> Vec<usize>;

    /// Unit messages that *physically reached the leader*, extracted from
    /// the final states.
    ///
    /// On completed fault-free runs this equals the summed per-vertex counts
    /// (the default). The distinction matters to the fault experiments: a
    /// run starved by injected losses leaves source-side bookkeeping (e.g.
    /// the tree wave's coverage) looking complete while the leader-side
    /// truth is not — implementations whose per-vertex counts are
    /// source-side override this with the leader's own receipts.
    fn leader_received(&self, states: &[Self::State]) -> u64 {
        self.per_vertex_delivered(states).iter().sum::<usize>() as u64
    }

    /// Packages an engine's output as an [`ExecutedGather`].
    fn executed_report(
        &self,
        states: &[Self::State],
        rounds: u64,
        messages: u64,
    ) -> ExecutedGather {
        let per_vertex_delivered = self.per_vertex_delivered(states);
        let delivered: usize = per_vertex_delivered.iter().sum();
        let total_messages = self.total_messages();
        ExecutedGather {
            rounds,
            messages,
            delivered_fraction: if total_messages == 0 {
                1.0
            } else {
                delivered as f64 / total_messages as f64
            },
            per_vertex_delivered,
            total_messages,
            strategy: self.strategy_name(),
        }
    }
}

/// Asserts that a plan's expander split was built for exactly this cluster:
/// the per-vertex port ranges must reproduce the cluster's degree sequence
/// (a total-count check alone would accept any graph with the same degree
/// sum and then build garbage routing tables).
pub(crate) fn assert_plan_matches(cluster: &Graph, split: &crate::split::ExpanderSplit) {
    assert_eq!(
        split.port_offset.len(),
        cluster.n(),
        "plan does not match the cluster"
    );
    let mut expected = 0usize;
    for v in 0..cluster.n() {
        assert_eq!(
            split.port_offset[v], expected,
            "plan does not match the cluster"
        );
        expected += cluster.degree(v).max(1);
    }
    assert_eq!(
        split.num_ports(),
        expected,
        "plan does not match the cluster"
    );
}

/// Conductance below which a grid-like cluster's token balancer end-game is
/// known to be reseed-window sensitive (φ ≲ 0.07 — the tri-grid-10x10
/// overrun the ROADMAP documents, whose sweep-cut estimate sits at ≈ 0.073);
/// [`select_gather_program`] routes such clusters to the tree pipeline. The
/// nearest keep-the-balancer families are comfortably above (tri-grid-8x8
/// ≈ 0.093, hypercube-6 ≈ 0.31).
pub const TREE_ROUTE_PHI: f64 = 0.08;

/// An executed gather program chosen by [`select_gather_program`] or
/// [`select_strategy_program`].
///
/// `SelectedGather` is itself a [`NodeProgram`] (state and message enums
/// dispatch to the chosen program), so a *heterogeneous* set of clusters —
/// each routed to whichever strategy fits it — can run under one program
/// type, e.g. through [`mfd_runtime::run_on_clusters`]. This is what lets
/// the decomposition layer swap metered gathers for executed ones wholesale.
#[derive(Debug, Clone)]
pub enum SelectedGather {
    /// The tree pipeline: always delivers everything; the right call on
    /// low-conductance clusters whose leader is no hub.
    Tree(TreeGatherProgram),
    /// The Lemma 2.2 token balancer (boxed: it carries its whole plan).
    LoadBalance(Box<LoadBalanceProgram>),
    /// The Lemma 2.5 walk schedule (boxed: it carries its path table).
    Walk(Box<WalkScheduleProgram>),
    /// The tree pipeline standing in for a walk schedule whose plan missed
    /// the failure budget (the cluster is not expander enough — planning is
    /// free leader-local work, so the selection can tell up front).
    WalkFallbackTree(TreeGatherProgram),
}

/// Message vocabulary of [`SelectedGather`]: the chosen program's messages,
/// wrapped. All vertices of a cluster run the same selection, so the variant
/// is uniform within a run; word counts delegate to the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectedMsg {
    /// A [`TreeGatherProgram`] message.
    Tree(TreeMsg),
    /// A [`LoadBalanceProgram`] message.
    LoadBalance(LbMsg),
    /// A [`WalkScheduleProgram`] message.
    Walk(WalkMsg),
}

impl RuntimeMessage for SelectedMsg {
    fn words(&self) -> usize {
        match self {
            SelectedMsg::Tree(m) => m.words(),
            SelectedMsg::LoadBalance(m) => m.words(),
            SelectedMsg::Walk(m) => m.words(),
        }
    }
}

/// Per-vertex state of [`SelectedGather`]: the chosen program's state.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectedState {
    /// State of a [`TreeGatherProgram`] vertex.
    Tree(TreeGatherState),
    /// State of a [`LoadBalanceProgram`] vertex.
    LoadBalance(LoadBalanceState),
    /// State of a [`WalkScheduleProgram`] vertex.
    Walk(WalkScheduleState),
}

/// Drives one inner round through the adapter surface ([`Outbox::new`] /
/// [`Outbox::into_sends`] / [`Outbox::violation`]) and re-wraps the sends.
/// On an inner model violation the illegal destination is replayed on the
/// outer outbox so the engine aborts with the same verdict.
fn dispatch_round<P: NodeProgram>(
    program: &P,
    ctx: &NodeCtx,
    state: &mut P::State,
    inbox: Vec<Envelope<P::Msg>>,
    out: &mut Outbox<'_, SelectedMsg>,
    wrap: impl Fn(P::Msg) -> SelectedMsg,
    replay: SelectedMsg,
) {
    let mut inner: Outbox<'_, P::Msg> = Outbox::new(ctx.id, ctx.neighbors);
    program.round(ctx, state, &inbox, &mut inner);
    if let Some(mfd_congest::CongestError::NotAnEdge { dst, .. }) = inner.violation() {
        out.send(*dst, replay);
        return;
    }
    for (dst, msg, _words) in inner.into_sends() {
        out.send(dst, wrap(msg));
    }
}

impl NodeProgram for SelectedGather {
    type State = SelectedState;
    type Msg = SelectedMsg;

    fn init(&self, ctx: &NodeCtx) -> SelectedState {
        match self {
            SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p) => {
                SelectedState::Tree(p.init(ctx))
            }
            SelectedGather::LoadBalance(p) => SelectedState::LoadBalance(p.init(ctx)),
            SelectedGather::Walk(p) => SelectedState::Walk(p.init(ctx)),
        }
    }

    fn round(
        &self,
        ctx: &NodeCtx,
        state: &mut SelectedState,
        inbox: &[Envelope<SelectedMsg>],
        out: &mut Outbox<'_, SelectedMsg>,
    ) {
        // Mismatched envelopes cannot arise (every vertex runs the same
        // selection); they are dropped rather than trusted, in line with the
        // gather programs' own degrade-don't-panic inbox handling.
        match (self, state) {
            (
                SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p),
                SelectedState::Tree(s),
            ) => {
                let inbox: Vec<Envelope<TreeMsg>> = inbox
                    .iter()
                    .filter_map(|e| match e.msg {
                        SelectedMsg::Tree(m) => Some(Envelope { src: e.src, msg: m }),
                        _ => None,
                    })
                    .collect();
                dispatch_round(
                    p,
                    ctx,
                    s,
                    inbox,
                    out,
                    SelectedMsg::Tree,
                    SelectedMsg::Tree(TreeMsg::Done),
                );
            }
            (SelectedGather::LoadBalance(p), SelectedState::LoadBalance(s)) => {
                let inbox: Vec<Envelope<LbMsg>> = inbox
                    .iter()
                    .filter_map(|e| match e.msg {
                        SelectedMsg::LoadBalance(m) => Some(Envelope { src: e.src, msg: m }),
                        _ => None,
                    })
                    .collect();
                dispatch_round(
                    p.as_ref(),
                    ctx,
                    s,
                    inbox,
                    out,
                    SelectedMsg::LoadBalance,
                    SelectedMsg::LoadBalance(LbMsg::Stop),
                );
            }
            (SelectedGather::Walk(p), SelectedState::Walk(s)) => {
                let inbox: Vec<Envelope<WalkMsg>> = inbox
                    .iter()
                    .filter_map(|e| match e.msg {
                        SelectedMsg::Walk(m) => Some(Envelope { src: e.src, msg: m }),
                        _ => None,
                    })
                    .collect();
                dispatch_round(
                    p.as_ref(),
                    ctx,
                    s,
                    inbox,
                    out,
                    SelectedMsg::Walk,
                    SelectedMsg::Walk(WalkMsg::Stop),
                );
            }
            _ => unreachable!("selection state matches the selected program"),
        }
    }

    fn halted(&self, ctx: &NodeCtx, state: &SelectedState) -> bool {
        match (self, state) {
            (
                SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p),
                SelectedState::Tree(s),
            ) => p.halted(ctx, s),
            (SelectedGather::LoadBalance(p), SelectedState::LoadBalance(s)) => p.halted(ctx, s),
            (SelectedGather::Walk(p), SelectedState::Walk(s)) => p.halted(ctx, s),
            _ => unreachable!("selection state matches the selected program"),
        }
    }

    fn round_budget_hint(&self) -> Option<u64> {
        match self {
            SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p) => p.round_budget_hint(),
            SelectedGather::LoadBalance(p) => p.round_budget_hint(),
            SelectedGather::Walk(p) => p.round_budget_hint(),
        }
    }

    fn quiescent(&self, ctx: &NodeCtx, state: &SelectedState) -> bool {
        match (self, state) {
            (
                SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p),
                SelectedState::Tree(s),
            ) => p.quiescent(ctx, s),
            (SelectedGather::LoadBalance(p), SelectedState::LoadBalance(s)) => p.quiescent(ctx, s),
            (SelectedGather::Walk(p), SelectedState::Walk(s)) => p.quiescent(ctx, s),
            _ => unreachable!("selection state matches the selected program"),
        }
    }
}

impl GatherProgram for SelectedGather {
    fn strategy_name(&self) -> &'static str {
        match self {
            SelectedGather::Tree(p) => p.strategy_name(),
            SelectedGather::LoadBalance(p) => p.strategy_name(),
            SelectedGather::Walk(p) => p.strategy_name(),
            SelectedGather::WalkFallbackTree(_) => "walk-schedule(tree-fallback)",
        }
    }

    fn total_messages(&self) -> usize {
        match self {
            SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p) => p.total_messages(),
            SelectedGather::LoadBalance(p) => p.total_messages(),
            SelectedGather::Walk(p) => p.total_messages(),
        }
    }

    fn per_vertex_delivered(&self, states: &[SelectedState]) -> Vec<usize> {
        match self {
            SelectedGather::Tree(p) | SelectedGather::WalkFallbackTree(p) => {
                let inner: Vec<TreeGatherState> = states
                    .iter()
                    .map(|s| match s {
                        SelectedState::Tree(t) => t.clone(),
                        _ => unreachable!("selection state matches the selected program"),
                    })
                    .collect();
                p.per_vertex_delivered(&inner)
            }
            SelectedGather::LoadBalance(p) => {
                let inner: Vec<LoadBalanceState> = states
                    .iter()
                    .map(|s| match s {
                        SelectedState::LoadBalance(t) => t.clone(),
                        _ => unreachable!("selection state matches the selected program"),
                    })
                    .collect();
                p.per_vertex_delivered(&inner)
            }
            SelectedGather::Walk(p) => {
                let inner: Vec<WalkScheduleState> = states
                    .iter()
                    .map(|s| match s {
                        SelectedState::Walk(t) => t.clone(),
                        _ => unreachable!("selection state matches the selected program"),
                    })
                    .collect();
                p.per_vertex_delivered(&inner)
            }
        }
    }
}

impl SelectedGather {
    /// Runs the chosen program on the synchronous executor and reports it.
    ///
    /// # Errors
    ///
    /// Propagates any [`RuntimeError`] from the executor.
    pub fn execute(
        &self,
        cluster: &Graph,
        config: &ExecutorConfig,
    ) -> Result<ExecutedGather, RuntimeError> {
        execute_gather(cluster, self, config).map(|(r, _)| r)
    }
}

/// A cheap conductance estimate: exact on small clusters, spectral sweep
/// (an upper bound on φ) otherwise, 1.0 when neither applies.
fn conductance_estimate(cluster: &Graph) -> f64 {
    properties::conductance_exact(cluster)
        .or_else(|| properties::spectral_sweep_cut(cluster, 80).map(|c| c.conductance))
        .unwrap_or(1.0)
}

/// Picks the executed gather program for a cluster that would otherwise run
/// the load balancer: low-conductance (φ ≲ [`TREE_ROUTE_PHI`]) clusters
/// whose leader has no hub degree (`deg(leader)² ≤ n`) are routed to
/// [`TreeGatherProgram`] — on such grid-like clusters the balancer's
/// end-game is reseed-window sensitive while the tree pipeline is both
/// cheaper and complete; everything else gets [`LoadBalanceProgram`] sized
/// by a fresh [`LoadBalancePlan`].
///
/// # Panics
///
/// Panics if `leader` is out of range.
pub fn select_gather_program(
    cluster: &Graph,
    leader: usize,
    f: f64,
    params: &LoadBalanceParams,
) -> SelectedGather {
    select_for_load_balance(cluster, leader, f, params).0
}

/// The balancer-vs-tree routing behind [`select_gather_program`], keeping
/// the plan it computed for callers that also need the metered oracle.
fn select_for_load_balance(
    cluster: &Graph,
    leader: usize,
    f: f64,
    params: &LoadBalanceParams,
) -> (SelectedGather, Option<LoadBalancePlan>) {
    assert!(leader < cluster.n().max(1), "leader out of range");
    let hub_degree = cluster.degree(leader).pow(2) > cluster.n();
    if !hub_degree && conductance_estimate(cluster) < TREE_ROUTE_PHI {
        (
            SelectedGather::Tree(TreeGatherProgram::new(cluster, leader)),
            None,
        )
    } else {
        let plan = LoadBalancePlan::new(cluster, params);
        let program = LoadBalanceProgram::new(cluster, leader, f, &plan);
        (SelectedGather::LoadBalance(Box::new(program)), Some(plan))
    }
}

/// The plans a selection computed along the way — [`LoadBalancePlan`] /
/// [`crate::walks::WalkPlan`] are deterministic but not free (spectral
/// estimates, walk seed search), so callers that also run the metered
/// oracle on the same cluster (the `Executed` backend's charge check) reuse
/// them instead of replanning.
#[derive(Debug, Default)]
pub struct SelectionPlans {
    /// The balancer plan, present exactly when the balancer was selected.
    pub load_balance: Option<LoadBalancePlan>,
    /// The walk plan, present exactly when the walk schedule was selected.
    pub walk: Option<crate::walks::WalkPlan>,
}

/// Program-level counterpart of [`crate::gather::gather_to_leader`]: picks
/// the executed program realizing `strategy` on this cluster, including
/// every fallback the metered path applies —
///
/// * [`GatherStrategy::TreePipeline`] → [`TreeGatherProgram`];
/// * [`GatherStrategy::LoadBalance`] → [`select_gather_program`]'s
///   conductance/leader-degree routing between the balancer and the tree;
/// * [`GatherStrategy::WalkSchedule`] → [`WalkScheduleProgram`] when the
///   plan meets the failure budget, the tree pipeline otherwise (the same
///   free leader-local planning verdict the metered path falls back on).
///
/// # Panics
///
/// Panics if `leader` is out of range.
pub fn select_strategy_program(
    cluster: &Graph,
    leader: usize,
    f: f64,
    strategy: &GatherStrategy,
) -> SelectedGather {
    select_strategy_program_with_plans(cluster, leader, f, strategy).0
}

/// [`select_strategy_program`] plus the plans the selection computed
/// ([`SelectionPlans`]).
pub fn select_strategy_program_with_plans(
    cluster: &Graph,
    leader: usize,
    f: f64,
    strategy: &GatherStrategy,
) -> (SelectedGather, SelectionPlans) {
    assert!(leader < cluster.n().max(1), "leader out of range");
    match strategy {
        GatherStrategy::TreePipeline => (
            SelectedGather::Tree(TreeGatherProgram::new(cluster, leader)),
            SelectionPlans::default(),
        ),
        GatherStrategy::LoadBalance(params) => {
            let (selected, plan) = select_for_load_balance(cluster, leader, f, params);
            (
                selected,
                SelectionPlans {
                    load_balance: plan,
                    walk: None,
                },
            )
        }
        GatherStrategy::WalkSchedule(params) => {
            let plan = plan_walk_schedule(cluster, leader, f, params);
            if plan.good_fraction < 1.0 - f {
                (
                    SelectedGather::WalkFallbackTree(TreeGatherProgram::new(cluster, leader)),
                    SelectionPlans::default(),
                )
            } else {
                let program = WalkScheduleProgram::new(cluster, &plan);
                (
                    SelectedGather::Walk(Box::new(program)),
                    SelectionPlans {
                        load_balance: None,
                        walk: Some(plan),
                    },
                )
            }
        }
    }
}

/// Runs a gather program on the synchronous executor and reports it.
///
/// # Errors
///
/// Propagates any [`RuntimeError`] from the executor.
pub fn execute_gather<P: GatherProgram>(
    cluster: &Graph,
    program: &P,
    config: &ExecutorConfig,
) -> Result<(ExecutedGather, Execution<P::State>), RuntimeError> {
    let run = Executor::new(config.clone()).run(cluster, program)?;
    let report = program.executed_report(&run.states, run.rounds, run.messages);
    Ok((report, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfd_congest::RoundMeter;
    use mfd_graph::generators;

    /// The ROADMAP-documented sensitivity: tri-grid-10x10's token-balancer
    /// end-game overruns the charge, so selection must route it (and its
    /// grid siblings) to the tree pipeline, whose executed rounds are pinned
    /// against the metered charge.
    #[test]
    fn selection_routes_low_conductance_grids_to_the_tree_pipeline() {
        for (rows, cols) in [(10, 10), (12, 12)] {
            let g = generators::triangulated_grid(rows, cols);
            let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
            let sel = select_gather_program(&g, leader, 0.1, &LoadBalanceParams::default());
            assert_eq!(sel.strategy_name(), "tree-pipeline", "{rows}x{cols}");
            let mut meter = RoundMeter::new();
            let charged = crate::gather::tree_gather(&g, leader, &mut meter);
            let report = sel.execute(&g, &ExecutorConfig::default()).unwrap();
            assert!(
                report.rounds <= charged.rounds,
                "{rows}x{cols}: executed {} > charged {}",
                report.rounds,
                charged.rounds
            );
            assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn selection_keeps_hubs_and_expanders_on_the_balancer() {
        // The wheel's leader is a Θ(n)-degree hub; the hypercube is a
        // bona-fide expander (φ ≈ 0.31) — both stay on Lemma 2.2, and both
        // deliver within the failure budget.
        for (name, g) in [
            ("wheel-64", generators::wheel(64)),
            ("hypercube-6", generators::hypercube(6)),
        ] {
            let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
            let f = 0.1;
            let sel = select_gather_program(&g, leader, f, &LoadBalanceParams::default());
            assert_eq!(sel.strategy_name(), "load-balance", "{name}");
            let report = sel.execute(&g, &ExecutorConfig::default()).unwrap();
            assert!(
                report.delivered_fraction >= 1.0 - f,
                "{name}: delivered {}",
                report.delivered_fraction
            );
        }
    }
}
