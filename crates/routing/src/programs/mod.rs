//! The §2 gather strategies as *executed* message-passing programs.
//!
//! Everything else in this crate is **metered**: a centralized computation
//! that simulates the communication pattern and charges rounds on a
//! [`mfd_congest::RoundMeter`]. The programs in this module are the
//! **executed** counterparts — genuine [`mfd_runtime::NodeProgram`]s whose
//! vertices only ever see their own state and their inboxes, runnable
//! unmodified on the synchronous [`mfd_runtime::Executor`] and on the
//! `mfd-sim` discrete-event engine:
//!
//! * [`TreeGatherProgram`] ⇔ [`crate::gather::tree_gather`] — BFS-tree
//!   construction by flooding, pipelined convergecast of `deg(v)` unit
//!   messages per vertex with in-band termination detection, and a pipelined
//!   echo that distributes the answers back down the tree.
//! * [`LoadBalanceProgram`] ⇔ [`crate::load_balance::load_balance_gather`] —
//!   the Lemma 2.2 token balancing on the expander split, with per-edge load
//!   gossip packed into the same O(log n)-bit message that carries a moving
//!   token, sized by the shared [`crate::load_balance::LoadBalancePlan`].
//! * [`WalkScheduleProgram`] ⇔ [`crate::walks::execute_walk_gather`] —
//!   store-and-forward token routing along the walk trajectories of a
//!   [`crate::walks::WalkPlan`], released by a schedule-broadcast wave and
//!   terminated by a stop wave from the leader.
//!
//! # Metered vs executed accounting
//!
//! The metered paths *charge* the paper's round bounds; the executed programs
//! *spend* rounds, one per synchronous step, policed by the engines'
//! [`mfd_congest::RoundMeter`] (one O(log n)-bit word per edge per direction
//! per round). The differential contract, validated by the integration tests
//! and the `report gather` benchmark section, is:
//!
//! * **rounds**: executed ≤ charged. The metered bound includes the reverse
//!   notification run (`charge_reverse`, on by default); the executed
//!   programs overlap their phases (tokens start flowing while the BFS wave
//!   is still spreading, answers are echoed while the gather is still
//!   draining) and terminate by in-band detection, so they land well inside
//!   the charged budget on every acceptance family.
//! * **delivered fraction**: executed ≥ the metered guarantee. The tree
//!   pipeline delivers everything; the walk schedule delivers *exactly* the
//!   planned good set (both engines route the same trajectories); the load
//!   balancer runs the same token budgets with one-round-stale neighbor
//!   loads, which the `2Δ⋄ + 1` threshold absorbs.
//! * **messages**: executed counts are reported next to the charged counts in
//!   `BENCH_gather.json`. The executed programs pay for what the metered
//!   paths idealize away (parent adoption, done markers, load gossip), so
//!   their message counts sit above the charged ones by design; CI's
//!   regression gate pins both.

use mfd_graph::Graph;
use mfd_runtime::{Execution, Executor, ExecutorConfig, NodeProgram, RuntimeError};

mod load_balance;
mod tree;
mod walks;

pub use load_balance::{LoadBalanceProgram, LoadBalanceState};
pub use tree::{TreeGatherProgram, TreeGatherState};
pub use walks::{WalkScheduleProgram, WalkScheduleState};

/// Outcome of one executed gather, in the vocabulary of
/// [`crate::gather::GatherReport`] so the two modes compare directly.
#[derive(Debug, Clone)]
pub struct ExecutedGather {
    /// Rounds actually executed (and validated) by the engine.
    pub rounds: u64,
    /// Program messages actually delivered.
    pub messages: u64,
    /// Fraction of the `2|E(S)|` messages delivered to the leader.
    pub delivered_fraction: f64,
    /// Delivered message count per cluster vertex.
    pub per_vertex_delivered: Vec<usize>,
    /// Total number of gatherable messages.
    pub total_messages: usize,
    /// Strategy name (matches the metered report's).
    pub strategy: &'static str,
}

/// Common reporting surface of the three gather programs.
///
/// The extraction is a pure function of the final states, so it applies to
/// any engine's output: pass `Execution::states` from the synchronous
/// executor or `SimExecution::states` from `mfd-sim`.
pub trait GatherProgram: NodeProgram {
    /// Strategy name, matching the metered [`crate::gather::GatherReport`].
    fn strategy_name(&self) -> &'static str;

    /// Total number of gatherable messages (`2|E|` of the cluster).
    fn total_messages(&self) -> usize;

    /// Per-vertex delivered counts, extracted from the final states.
    fn per_vertex_delivered(&self, states: &[Self::State]) -> Vec<usize>;

    /// Packages an engine's output as an [`ExecutedGather`].
    fn executed_report(
        &self,
        states: &[Self::State],
        rounds: u64,
        messages: u64,
    ) -> ExecutedGather {
        let per_vertex_delivered = self.per_vertex_delivered(states);
        let delivered: usize = per_vertex_delivered.iter().sum();
        let total_messages = self.total_messages();
        ExecutedGather {
            rounds,
            messages,
            delivered_fraction: if total_messages == 0 {
                1.0
            } else {
                delivered as f64 / total_messages as f64
            },
            per_vertex_delivered,
            total_messages,
            strategy: self.strategy_name(),
        }
    }
}

/// Asserts that a plan's expander split was built for exactly this cluster:
/// the per-vertex port ranges must reproduce the cluster's degree sequence
/// (a total-count check alone would accept any graph with the same degree
/// sum and then build garbage routing tables).
pub(crate) fn assert_plan_matches(cluster: &Graph, split: &crate::split::ExpanderSplit) {
    assert_eq!(
        split.port_offset.len(),
        cluster.n(),
        "plan does not match the cluster"
    );
    let mut expected = 0usize;
    for v in 0..cluster.n() {
        assert_eq!(
            split.port_offset[v], expected,
            "plan does not match the cluster"
        );
        expected += cluster.degree(v).max(1);
    }
    assert_eq!(
        split.num_ports(),
        expected,
        "plan does not match the cluster"
    );
}

/// Runs a gather program on the synchronous executor and reports it.
///
/// # Errors
///
/// Propagates any [`RuntimeError`] from the executor.
pub fn execute_gather<P: GatherProgram>(
    cluster: &Graph,
    program: &P,
    config: &ExecutorConfig,
) -> Result<(ExecutedGather, Execution<P::State>), RuntimeError> {
    let run = Executor::new(config.clone()).run(cluster, program)?;
    let report = program.executed_report(&run.states, run.rounds, run.messages);
    Ok((report, run))
}
