//! The executed walk-schedule gatherer (Lemmas 2.5/2.6).
//!
//! The leader plans a [`WalkPlan`] locally (free computation — it knows the
//! cluster topology), then the cluster executes it:
//!
//! 1. **Schedule wave** — the leader floods an announcement carrying the
//!    64-bit schedule seed; hearing it both activates a vertex and tells it
//!    to forward the wave. (The metered path charges the paper's much larger
//!    O(k log n)-bit hash-description broadcast for this step; the executed
//!    program ships the implementation's actual one-word seed, so its
//!    broadcast cost sits far inside the charged bound.)
//! 2. **Token forwarding** — each *good* message is routed along its
//!    delivering walk, projected from the expander split onto the cluster:
//!    gadget-internal walk steps are free local moves, each external step is
//!    one cluster edge. Tokens are forwarded store-and-forward, one token per
//!    edge per direction per round with per-edge FIFO queues; the plan's
//!    congestion cap bounds the queueing. Both engines reproduce the
//!    trajectories through the planner's own [`crate::walks::walk_step`], so
//!    the executed delivered set equals the planned good set *exactly*.
//! 3. **Stop wave** — the leader knows how many tokens to expect; when the
//!    last one arrives it floods a stop wave and the cluster halts.

use std::collections::VecDeque;

use mfd_graph::Graph;
use mfd_runtime::{Envelope, NodeCtx, NodeProgram, Outbox, RuntimeMessage};

use crate::walks::{walk_step, WalkPlan};

use super::GatherProgram;

/// Message vocabulary of the executed walk schedule; one O(log n)-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkMsg {
    /// Schedule wave (conceptually the 64-bit seed).
    Announce,
    /// A routed message token: `hop` is the receiver's index on the token's
    /// projected path.
    Token {
        /// Token id (index into the program's path table).
        id: u32,
        /// Path position of the receiver.
        hop: u32,
    },
    /// Every expected token reached the leader: halt after forwarding.
    Stop,
}

impl RuntimeMessage for WalkMsg {}

/// Per-vertex state of [`WalkScheduleProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkScheduleState {
    activated: bool,
    announced: bool,
    /// FIFO token queue per neighbor (in `ctx.neighbors` order).
    queues: Vec<VecDeque<(u32, u32)>>,
    /// Leader only: tokens absorbed per source vertex.
    pub absorbed_from: Vec<u64>,
    /// Leader only: per-token absorption flags — a duplicated token (fault
    /// injection) delivers its message once, like any transport would.
    absorbed: Vec<bool>,
    absorbed_total: u64,
    stop_relayed: bool,
    done: bool,
}

/// The derandomized walk-schedule gatherer as a real message-passing program;
/// executed counterpart of [`crate::walks::execute_walk_gather`], routing the
/// same [`WalkPlan`].
#[derive(Debug, Clone)]
pub struct WalkScheduleProgram {
    target: usize,
    degrees: Vec<usize>,
    total_messages: usize,
    /// Per token: the projected cluster-vertex path from owner to the leader
    /// (truncated at the first leader visit).
    paths: Vec<Vec<usize>>,
    /// Token ids released by each vertex, ascending.
    tokens_of: Vec<Vec<u32>>,
    expected: u64,
    budget: u64,
}

impl WalkScheduleProgram {
    /// Builds the executed program routing `plan`'s good messages on
    /// `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built for a different cluster.
    pub fn new(cluster: &Graph, plan: &WalkPlan) -> Self {
        let split = &plan.split;
        let target = plan.schedule.target;
        let seed = plan.schedule.seed;
        let r = plan.schedule.walks_per_message;
        let tau = plan.schedule.steps;
        let ports = split.num_ports();
        super::assert_plan_matches(cluster, split);
        assert_eq!(plan.good.len(), ports, "plan does not match the cluster");
        let mut target_port = vec![false; ports];
        for p in split.ports(target, cluster) {
            target_port[p] = true;
        }
        let mut paths: Vec<Vec<usize>> = Vec::new();
        let mut tokens_of: Vec<Vec<u32>> = vec![Vec::new(); cluster.n()];
        for p in 0..ports {
            let owner = split.owner[p];
            if owner == target || cluster.degree(owner) == 0 || !plan.good[p] {
                continue;
            }
            // The message's delivering walk: the first of its r walks ending
            // in the leader's gadget (goodness guarantees one exists).
            let mut delivering = None;
            'walks: for w in 0..r {
                let walk_id = (p * r + w) as u64;
                let mut cur = p;
                let mut trail = Vec::with_capacity(tau + 1);
                trail.push(cur);
                for t in 0..tau {
                    cur = walk_step(split, seed, walk_id, t, cur);
                    trail.push(cur);
                }
                if target_port[cur] {
                    delivering = Some(trail);
                    break 'walks;
                }
            }
            let trail = delivering.expect("a good message has a delivering walk");
            // Project onto the cluster: consecutive distinct owners are
            // exactly the external steps, i.e. cluster edges. Stop at the
            // first leader visit — the message is delivered there.
            let mut path = vec![owner];
            for q in trail {
                let v = split.owner[q];
                if *path.last().expect("non-empty") != v {
                    path.push(v);
                    if v == target {
                        break;
                    }
                }
            }
            debug_assert_eq!(*path.last().expect("non-empty"), target);
            tokens_of[owner].push(paths.len() as u32);
            paths.push(path);
        }
        let expected = paths.len() as u64;
        let hops: u64 = paths.iter().map(|p| (p.len() - 1) as u64).sum();
        WalkScheduleProgram {
            target,
            degrees: (0..cluster.n()).map(|v| cluster.degree(v)).collect(),
            total_messages: 2 * cluster.m(),
            paths,
            tokens_of,
            expected,
            // Wave + stop wave are each ≤ n rounds; total forwarding work is
            // `hops`, and a token waits at most the whole remaining workload.
            budget: 2 * cluster.n() as u64 + 2 * hops + 16,
        }
    }
}

impl NodeProgram for WalkScheduleProgram {
    type State = WalkScheduleState;
    type Msg = WalkMsg;

    fn init(&self, ctx: &NodeCtx) -> WalkScheduleState {
        let is_target = ctx.id == self.target;
        WalkScheduleState {
            activated: is_target,
            announced: false,
            queues: vec![VecDeque::new(); ctx.degree()],
            absorbed_from: if is_target {
                vec![0; ctx.n]
            } else {
                Vec::new()
            },
            absorbed: if is_target {
                vec![false; self.paths.len()]
            } else {
                Vec::new()
            },
            absorbed_total: 0,
            stop_relayed: false,
            done: ctx.degree() == 0,
        }
    }

    fn round(
        &self,
        ctx: &NodeCtx,
        state: &mut WalkScheduleState,
        inbox: &[Envelope<WalkMsg>],
        out: &mut Outbox<'_, WalkMsg>,
    ) {
        let was_announced = state.announced;
        let mut stop = false;
        for env in inbox {
            match env.msg {
                WalkMsg::Announce => state.activated = true,
                WalkMsg::Token { id, hop } => {
                    let path = &self.paths[id as usize];
                    let hop = hop as usize;
                    debug_assert_eq!(path[hop], ctx.id);
                    if hop == path.len() - 1 {
                        if !state.absorbed[id as usize] {
                            state.absorbed[id as usize] = true;
                            state.absorbed_from[path[0]] += 1;
                            state.absorbed_total += 1;
                        }
                    } else {
                        let next = path[hop + 1];
                        let qi = ctx
                            .neighbors
                            .binary_search(&next)
                            .expect("path hops follow cluster edges");
                        state.queues[qi].push_back((id, hop as u32));
                    }
                }
                WalkMsg::Stop => stop = true,
            }
        }

        if stop {
            // On a reliable network the queues are provably empty here; a
            // faulty one can leave stragglers in flight — they die with the
            // stop wave, part of the measured degradation.
            if !state.stop_relayed {
                out.broadcast(WalkMsg::Stop);
                state.stop_relayed = true;
            }
            state.done = true;
            return;
        }

        if state.activated && !state.announced {
            // Activation round: forward the schedule wave and release this
            // vertex's own tokens (they start moving next round — the wave
            // owns the edges this round).
            state.announced = true;
            out.broadcast(WalkMsg::Announce);
            for &id in &self.tokens_of[ctx.id] {
                let next = self.paths[id as usize][1];
                let qi = ctx
                    .neighbors
                    .binary_search(&next)
                    .expect("path hops follow cluster edges");
                state.queues[qi].push_back((id, 0));
            }
        } else if was_announced {
            if ctx.id == self.target && state.absorbed_total >= self.expected {
                out.broadcast(WalkMsg::Stop);
                state.stop_relayed = true;
                state.done = true;
                return;
            }
            for (qi, queue) in state.queues.iter_mut().enumerate() {
                if let Some((id, hop)) = queue.pop_front() {
                    out.send(ctx.neighbors[qi], WalkMsg::Token { id, hop: hop + 1 });
                }
            }
        }

        if !state.activated && ctx.round > ctx.n as u64 {
            // The wave reaches every vertex of the leader's component within
            // n rounds; past that this vertex is provably outside it.
            state.done = true;
        }
    }

    fn halted(&self, _ctx: &NodeCtx, state: &WalkScheduleState) -> bool {
        state.done
    }

    fn round_budget_hint(&self) -> Option<u64> {
        Some(self.budget + 8)
    }

    /// Same timeout-vs-fixpoint trade as the tree gather: a vertex the
    /// schedule wave has not reached is pure frontier-waiting.
    fn quiescent(&self, _ctx: &NodeCtx, state: &WalkScheduleState) -> bool {
        !state.activated
    }
}

impl GatherProgram for WalkScheduleProgram {
    fn strategy_name(&self) -> &'static str {
        "walk-schedule"
    }

    fn total_messages(&self) -> usize {
        self.total_messages
    }

    fn per_vertex_delivered(&self, states: &[WalkScheduleState]) -> Vec<usize> {
        let mut per_vertex = vec![0usize; self.degrees.len()];
        if let Some(target_state) = states.get(self.target) {
            for (v, &count) in target_state.absorbed_from.iter().enumerate() {
                per_vertex[v] = count as usize;
            }
        }
        if self.target < per_vertex.len() {
            // The leader's own messages are delivered by definition.
            per_vertex[self.target] = self.degrees[self.target];
        }
        per_vertex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walks::{execute_walk_gather, plan_walk_schedule, WalkParams};
    use mfd_congest::RoundMeter;
    use mfd_graph::generators;
    use mfd_runtime::ExecutorConfig;

    #[test]
    fn executed_delivery_equals_the_planned_good_set() {
        for g in [
            generators::complete(10),
            generators::hypercube(4),
            generators::wheel(32),
        ] {
            let params = WalkParams::default();
            let plan = plan_walk_schedule(&g, 0, 0.2, &params);
            let mut meter = RoundMeter::new();
            let charged = execute_walk_gather(&g, &plan, &params, &mut meter);
            let program = WalkScheduleProgram::new(&g, &plan);
            let (report, _) =
                super::super::execute_gather(&g, &program, &ExecutorConfig::default()).unwrap();
            assert_eq!(
                report.per_vertex_delivered,
                charged.per_vertex_delivered,
                "n={} m={}",
                g.n(),
                g.m()
            );
            assert!((report.delivered_fraction - charged.delivered_fraction).abs() < 1e-12);
            assert!(
                report.rounds <= charged.rounds,
                "executed {} > charged {}",
                report.rounds,
                charged.rounds
            );
        }
    }

    #[test]
    fn paths_follow_cluster_edges() {
        let g = generators::hypercube(4);
        let plan = plan_walk_schedule(&g, 0, 0.2, &WalkParams::default());
        let program = WalkScheduleProgram::new(&g, &plan);
        for path in &program.paths {
            assert!(path.len() >= 2);
            assert_eq!(*path.last().unwrap(), 0);
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "non-edge hop {pair:?}");
            }
            // Delivered exactly once: the leader appears only as the endpoint.
            assert!(path[..path.len() - 1].iter().all(|&v| v != 0));
        }
    }

    #[test]
    fn empty_cluster_is_free() {
        let g = Graph::new(2);
        let plan = plan_walk_schedule(&g, 0, 0.1, &WalkParams::default());
        let program = WalkScheduleProgram::new(&g, &plan);
        let (report, _) =
            super::super::execute_gather(&g, &program, &ExecutorConfig::default()).unwrap();
        assert_eq!(report.rounds, 0);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    }
}
