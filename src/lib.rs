//! Umbrella crate for the minor-free decomposition (MFD) workspace.
//!
//! Re-exports the library crates under one roof so downstream users (and the
//! repo-level integration tests and examples) can depend on a single package:
//!
//! * [`graph`] — graphs, generators, planarity, structural properties.
//! * [`congest`] — round/bandwidth accounting and metered primitives.
//! * [`core`] — the paper's deterministic decompositions.
//! * [`routing`] — information-gathering strategies (§2), metered and executed.
//! * [`runtime`] — the parallel round-synchronous execution engine.
//! * [`sim`] — the deterministic discrete-event asynchronous simulator
//!   (latency models + α-synchronizer + fault-injection hooks).
//! * [`faults`] — fault models (loss, duplication, reordering, crash-stop),
//!   the `Reliable<P>` recovery adapter, and the gather-under-faults /
//!   leader re-election experiments.
//! * [`trace`] — the observability layer: trace sinks, deterministic
//!   metrics, JSON-lines logs, round digests and divergence search.
//! * [`prof`] — the wall-clock profiling overlay: per-shard phase timers,
//!   traffic matrices, straggler reports and the regression localizer.
//! * [`replay`] — the checkpoint/replay layer: the `Snapshot` byte codec,
//!   digest-stamped checkpoint journals, and bit-identical resume.
//! * [`apps`] — applications (MIS, matching, cover, cut, testing).
//! * [`bench`](mod@bench) — benchmark workloads, table formatting, and the
//!   JSON tooling behind the CI regression gate.
//!
//! Start with [`docs::architecture`] for a guided tour of the workspace and
//! [`docs::determinism`] for the reproducibility contract every PR must keep.

pub mod docs;

pub use mfd_apps as apps;
pub use mfd_bench as bench;
pub use mfd_congest as congest;
pub use mfd_core as core;
pub use mfd_faults as faults;
pub use mfd_graph as graph;
pub use mfd_prof as prof;
pub use mfd_replay as replay;
pub use mfd_routing as routing;
pub use mfd_runtime as runtime;
pub use mfd_sim as sim;
pub use mfd_trace as trace;
