//! Umbrella crate for the minor-free decomposition (MFD) workspace.
//!
//! Re-exports the library crates under one roof so downstream users (and the
//! repo-level integration tests and examples) can depend on a single package:
//!
//! * [`graph`](mfd_graph) — graphs, generators, planarity, structural properties.
//! * [`congest`](mfd_congest) — round/bandwidth accounting and metered primitives.
//! * [`core`](mfd_core) — the paper's deterministic decompositions.
//! * [`routing`](mfd_routing) — information-gathering strategies (§2).
//! * [`runtime`](mfd_runtime) — the parallel round-synchronous execution engine.
//! * [`sim`](mfd_sim) — the deterministic discrete-event asynchronous simulator
//!   (latency models + α-synchronizer).
//! * [`apps`](mfd_apps) — applications (MIS, matching, cover, cut, testing).
//! * [`bench`](mfd_bench) — benchmark workloads and table formatting.

pub use mfd_apps as apps;
pub use mfd_bench as bench;
pub use mfd_congest as congest;
pub use mfd_core as core;
pub use mfd_graph as graph;
pub use mfd_routing as routing;
pub use mfd_runtime as runtime;
pub use mfd_sim as sim;
