//! The workspace books, embedded so their examples compile and run as
//! doctests of this crate (`cargo test --doc -p mfd`).
//!
//! The sources live in `docs/` at the repository root; this module embeds
//! them verbatim. Keeping them here means every Rust fence in the books is
//! checked against the real APIs on every CI run — the books cannot drift.

/// The guided tour of the workspace (embedded from `docs/ARCHITECTURE.md`).
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

/// The reproducibility contract (embedded from `docs/DETERMINISM.md`).
#[doc = include_str!("../docs/DETERMINISM.md")]
pub mod determinism {}

/// Profiling without perturbation (embedded from `docs/PROFILING.md`).
#[doc = include_str!("../docs/PROFILING.md")]
pub mod profiling {}
