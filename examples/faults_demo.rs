//! Fault injection in five acts: break the network, watch a gather protocol
//! starve, repair it with the reliable-delivery adapter, and survive a
//! leader crash.
//!
//! ```text
//! cargo run --release --example faults_demo
//! ```

use mfd_faults::{crash_and_regather, gather_raw, gather_recovered, FaultModel, Reliable};
use mfd_graph::generators;
use mfd_routing::programs::TreeGatherProgram;
use mfd_runtime::ExecutorConfig;
use mfd_sim::SimConfig;

fn main() {
    let g = generators::triangulated_grid(8, 8);
    let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
    let program = TreeGatherProgram::new(&g, leader);
    let config = SimConfig::default();

    println!(
        "cluster: tri-grid 8x8 (n = {}, m = {}), leader {leader}\n",
        g.n(),
        g.m()
    );

    // Act 1: the clean run — everything arrives.
    let clean = gather_raw(&g, &program, &config, &FaultModel::none()).unwrap();
    println!(
        "clean     : delivered {:5.1}%  rounds {:>5}  messages {:>7}",
        100.0 * clean.gather.delivered_fraction,
        clean.gather.rounds,
        clean.gather.messages
    );

    // Act 2: i.i.d. loss reaches the protocol — it starves mid-pipeline.
    let model = FaultModel::iid_loss(0.2);
    let raw = gather_raw(&g, &program, &config, &model).unwrap();
    println!(
        "loss 20%  : delivered {:5.1}%  rounds {:>5}  messages {:>7}  lost {}  wedged: {}",
        100.0 * raw.gather.delivered_fraction,
        raw.gather.rounds,
        raw.gather.messages,
        raw.lost_messages,
        raw.wedged
    );

    // Act 3: bursty Gilbert–Elliott loss — outages come in runs.
    let burst = FaultModel::burst_loss(0.05, 0.25, 0.01, 0.6);
    let bursty = gather_raw(&g, &program, &config, &burst).unwrap();
    println!(
        "burst loss: delivered {:5.1}%  rounds {:>5}  messages {:>7}  lost {}  wedged: {}",
        100.0 * bursty.gather.delivered_fraction,
        bursty.gather.rounds,
        bursty.gather.messages,
        bursty.lost_messages,
        bursty.wedged
    );

    // Act 4: the same program, same 20% loss, behind Reliable<P>: sequence
    // numbers + cumulative acks + timeout retransmission restore the exact
    // loss-free delivered set, at a measured overhead.
    let recovered = gather_recovered(&g, &Reliable::new(program.clone()), &config, &model).unwrap();
    let stats = recovered.reliable.unwrap();
    println!(
        "reliable  : delivered {:5.1}%  rounds {:>5}  frames   {:>7}  retransmits {} ({:.2} per fresh)",
        100.0 * recovered.gather.delivered_fraction,
        recovered.gather.rounds,
        stats.frames,
        stats.retransmitted,
        stats.retransmit_overhead()
    );
    assert!((recovered.gather.delivered_fraction - 1.0).abs() < 1e-12);

    // Act 5: crash-stop the leader mid-gather; the survivors detect the
    // silence, re-elect the largest surviving id and re-gather without it.
    let crash = crash_and_regather(&g, leader, 5, 2, &config, &ExecutorConfig::default()).unwrap();
    println!(
        "\ncrash     : leader {leader} dies before round 5; {} survivors agree on new leader {} \
         (election: {} rounds, {} heartbeats)",
        crash.survivors.len(),
        crash.elected,
        crash.election_rounds,
        crash.election_messages
    );
    println!(
        "re-gather : delivered {:5.1}%  rounds {:>5}  messages {:>7}",
        100.0 * crash.regather.delivered_fraction,
        crash.regather.rounds,
        crash.regather.messages
    );
    assert!(crash.agreement);
}
