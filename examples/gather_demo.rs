//! The §2 gather strategies as *executed* message-passing programs: each
//! strategy runs as a real `NodeProgram` on the synchronous executor and on
//! the asynchronous `mfd-sim` event engine, side by side with the metered
//! implementation's charged bound.
//!
//! Run with:
//! ```text
//! cargo run --release --example gather_demo
//! ```

use mfd_congest::RoundMeter;
use mfd_graph::generators;
use mfd_graph::Graph;
use mfd_routing::load_balance::{
    load_balance_gather_with_plan, LoadBalanceParams, LoadBalancePlan,
};
use mfd_routing::programs::{
    execute_gather, GatherProgram, LoadBalanceProgram, TreeGatherProgram, WalkScheduleProgram,
};
use mfd_routing::walks::{execute_walk_gather, plan_walk_schedule};
use mfd_runtime::ExecutorConfig;
use mfd_sim::{LatencyModel, SimConfig, Simulator};

/// Runs one executed gather program on both engines and prints it next to the
/// metered charge.
fn show<P: GatherProgram>(g: &Graph, program: &P, charged_rounds: u64, charged_delivered: f64) {
    let cfg = ExecutorConfig::default();
    let (report, sync) =
        execute_gather(g, program, &cfg).expect("gather programs respect the CONGEST model");
    let sim = Simulator::new(SimConfig::matching(
        &cfg,
        LatencyModel::HeavyTail {
            min: 1,
            alpha: 1.3,
            cap: 64,
        },
    ))
    .run(g, program)
    .expect("gather programs respect the CONGEST model");
    assert_eq!(sim.rounds, sync.rounds, "rounds are engine-invariant");
    assert!(
        report.rounds <= charged_rounds,
        "executed rounds stay inside the charged bound"
    );
    println!(
        "  {:14} charged {:6} rounds ({:5.1}%) | executed {:5} rounds ({:5.1}%), \
         {:6} msgs | heavy-tail makespan {:6}",
        report.strategy,
        charged_rounds,
        100.0 * charged_delivered,
        report.rounds,
        100.0 * report.delivered_fraction,
        report.messages,
        sim.makespan,
    );
}

fn main() {
    println!("=== §2 gather strategies, metered charge vs executed NodeProgram ===");
    for (name, g) in [
        ("wheel-96", generators::wheel(96)),
        ("hypercube-5", generators::hypercube(5)),
        ("tri-grid-8x8", generators::triangulated_grid(8, 8)),
    ] {
        let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
        println!(
            "\n{name}: n = {}, m = {}, leader degree = {}",
            g.n(),
            g.m(),
            g.degree(leader)
        );

        let mut meter = RoundMeter::new();
        let charged = mfd_routing::gather::tree_gather(&g, leader, &mut meter);
        show(
            &g,
            &TreeGatherProgram::new(&g, leader),
            charged.rounds,
            charged.delivered_fraction,
        );

        let f = 0.1;
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        let mut meter = RoundMeter::new();
        let charged = load_balance_gather_with_plan(&g, leader, f, &plan, &mut meter);
        show(
            &g,
            &LoadBalanceProgram::new(&g, leader, f, &plan),
            charged.rounds,
            charged.delivered_fraction,
        );

        let params = mfd::bench::acceptance_walk_params();
        let plan = plan_walk_schedule(&g, leader, 0.2, &params);
        let mut meter = RoundMeter::new();
        let charged = execute_walk_gather(&g, &plan, &params, &mut meter);
        show(
            &g,
            &WalkScheduleProgram::new(&g, &plan),
            charged.rounds,
            charged.delivered_fraction,
        );
    }
    println!("\nAll executed runs stayed within their charged bounds on both engines.");
}
