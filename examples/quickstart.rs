//! Quickstart: build an (ε, D, T)-decomposition of a planar network and inspect it.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart -p mfd-apps
//! ```

use mfd_core::edt::{build_edt, EdtConfig};
use mfd_graph::generators;

fn main() {
    // A triangulated 32×32 grid: a planar (hence K5-minor-free) network with
    // 1024 vertices and maximum degree 8.
    let network = generators::triangulated_grid(32, 32);
    println!(
        "network: n = {}, m = {}, max degree = {}",
        network.n(),
        network.m(),
        network.max_degree()
    );

    for epsilon in [0.5, 0.25, 0.125] {
        let config = EdtConfig::new(epsilon);
        let (decomposition, meter) = build_edt(&network, &config);
        println!("\n=== (ε = {epsilon}, D, T)-decomposition ===");
        println!(
            "  inter-cluster edge fraction : {:.4} (target {epsilon})",
            decomposition.epsilon_achieved
        );
        println!(
            "  clusters                    : {}",
            decomposition.clustering.num_clusters()
        );
        println!("  max cluster diameter D      : {}", decomposition.diameter);
        println!(
            "  routing time T (rounds)     : {}",
            decomposition.routing_rounds
        );
        println!(
            "  construction rounds         : {}",
            decomposition.construction_rounds
        );
        println!(
            "  merge iterations            : {}",
            decomposition.iterations
        );
        println!(
            "  refinement passes           : {}",
            decomposition.refinements
        );
        println!(
            "  routing strategy            : {}",
            decomposition.routing_strategy
        );
        println!("  total rounds charged        : {}", meter.rounds());
        println!("  total messages charged      : {}", meter.messages());
        assert!(decomposition.is_valid(&network));
    }
}
