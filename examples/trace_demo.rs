//! Demo of the `mfd-trace` observability layer: composes the three concrete
//! sinks on real runs of both engines and shows what each one buys —
//! deterministic counters and inbox histograms (`MetricsSink`), chained
//! per-round state digests with cross-engine agreement (`DigestSink`),
//! structured JSON-lines logs and a Chrome-trace flamegraph of the EDT
//! construction phases (`JsonlSink`), and the `first_divergence` binary
//! search pinpointing an injected state corruption to its exact round and
//! vertex.
//!
//! Run with: `cargo run --release --example trace_demo`

use mfd_bench::trace::{executor_chain, sim_chain, DivergenceProbe};
use mfd_core::edt::{build_edt_traced, EdtConfig};
use mfd_core::programs::BfsProgram;
use mfd_graph::generators;
use mfd_routing::backend::Metered;
use mfd_runtime::{Executor, ExecutorConfig};
use mfd_sim::LatencyModel;
use mfd_trace::jsonl::chrome_trace;
use mfd_trace::{first_divergence, DigestSink, JsonlSink, MetricsSink, Tee};

fn main() {
    let g = generators::triangulated_grid(12, 12);
    let cfg = ExecutorConfig::default();
    println!(
        "graph: triangulated 12x12 grid, n = {}, m = {}\n",
        g.n(),
        g.m()
    );

    // 1. Sink composition: one BFS run observed by a metrics sink *and* a
    //    digest sink at once, via the Tee combinator. Observation never
    //    perturbs the run (the integration tests prove bit-identity).
    let mut sinks = Tee::new(MetricsSink::new(), DigestSink::new());
    let run = Executor::new(cfg.clone())
        .run_traced(&g, &BfsProgram { root: 0 }, &mut sinks)
        .expect("BFS is model-compliant");
    println!(
        "BFS on the executor: {} rounds, {} messages",
        run.rounds, run.messages
    );
    println!("  events by kind:");
    for (kind, count) in &sinks.a.events_by_kind {
        println!("    {kind:<12} {count}");
    }
    let hist = sinks.a.inbox_hist;
    let buckets: Vec<String> = hist
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| format!("2^{i}:{c}"))
        .collect();
    println!("  inbox-size log2 histogram: {}", buckets.join(" "));
    println!(
        "  digest chain: {} sealed rounds, head {:016x}",
        sinks.b.chain().len(),
        sinks.b.head()
    );

    // 2. The cross-engine contract, strengthened: at unit latency the event
    //    engine journals the *same digest chain* — not just the same final
    //    states, the same state history, round for round.
    let (a, _) = executor_chain(&g, &DivergenceProbe::clean(12), &cfg).unwrap();
    let (b, _) = sim_chain(
        &g,
        &DivergenceProbe::clean(12),
        &cfg,
        LatencyModel::Fixed(1),
    )
    .unwrap();
    assert_eq!(a.chain(), b.chain());
    println!(
        "\ncross-engine digest chains agree on all {} rounds (head {:016x})",
        a.chain().len(),
        a.head()
    );

    // 3. Divergence hunting: corrupt vertex 7 at round 5 and binary-search
    //    the chains. The hit is exact — round 5, vertex 7.
    let (bad, _) = executor_chain(&g, &DivergenceProbe::perturbed(12, 5, 7), &cfg).unwrap();
    let round = first_divergence(&a.chain(), &bad.chain()).expect("the corruption propagates");
    let culprits = DigestSink::diverging_vertices(&a, &bad, round);
    println!(
        "injected corruption at (round 5, vertex 7) -> first_divergence = round {round}, \
         diverging vertices {culprits:?}"
    );
    assert_eq!((round, culprits), (5, vec![7]));

    // 4. Phase spans: the EDT construction under a JSON-lines sink. Every
    //    merge/refine/routing phase and per-cluster gather sub-run lands in
    //    the log; the closed spans export as a Chrome-trace flamegraph
    //    (load it in chrome://tracing or Perfetto).
    let mut jsonl = JsonlSink::new(Vec::new());
    let (decomposition, meter) = build_edt_traced(&g, &EdtConfig::new(0.3), &Metered, &mut jsonl);
    println!(
        "\nEDT construction (metered backend): {} clusters, {} rounds charged",
        decomposition.leaders.len(),
        meter.rounds()
    );
    let spans = jsonl.spans.clone();
    let log = String::from_utf8(jsonl.into_inner()).unwrap();
    println!("  JSONL log: {} lines; first three:", log.lines().count());
    for line in log.lines().take(3) {
        println!("    {line}");
    }
    println!("  closed spans (name, rounds, messages):");
    for s in &spans {
        println!("    {:<10} {:>6} {:>8}", s.name, s.rounds, s.messages);
    }
    println!("  chrome trace: {}", chrome_trace(&spans).trim_end());

    // Same run, same bytes: the log itself is part of the deterministic
    // record.
    let mut again = JsonlSink::new(Vec::new());
    build_edt_traced(&g, &EdtConfig::new(0.3), &Metered, &mut again);
    assert_eq!(log, String::from_utf8(again.into_inner()).unwrap());
    println!("\nre-running produced a byte-identical JSONL log");
}
