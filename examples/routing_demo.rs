//! The three information-gathering strategies of §2 side by side: pipelined BFS-tree
//! gather, expander-split load balancing (Lemma 2.2), and derandomized random-walk
//! schedules (Lemma 2.5).
//!
//! Run with:
//! ```text
//! cargo run --release --example routing_demo -p mfd-apps
//! ```

use mfd_congest::RoundMeter;
use mfd_graph::generators;
use mfd_graph::Graph;
use mfd_routing::gather::{gather_to_leader, GatherStrategy};
use mfd_routing::load_balance::LoadBalanceParams;
use mfd_routing::walks::WalkParams;

fn run_all(name: &str, g: &Graph, leader: usize) {
    println!(
        "\n=== {name}: n = {}, m = {}, leader degree = {} ===",
        g.n(),
        g.m(),
        g.degree(leader)
    );
    let strategies: Vec<(&str, GatherStrategy)> = vec![
        ("tree pipeline", GatherStrategy::TreePipeline),
        (
            "load balancing (Lemma 2.2)",
            GatherStrategy::LoadBalance(LoadBalanceParams::default()),
        ),
        (
            "walk schedule (Lemma 2.5)",
            GatherStrategy::WalkSchedule(WalkParams::default()),
        ),
    ];
    for (label, strategy) in strategies {
        let mut meter = RoundMeter::new();
        let report = gather_to_leader(g, leader, 0.05, &strategy, &mut meter);
        println!(
            "  {:28} rounds = {:7}  delivered = {:5.1}%  messages = {}",
            label,
            report.rounds,
            100.0 * report.delivered_fraction,
            meter.messages()
        );
    }
}

fn main() {
    // A high-conductance cluster: this is the regime the expander gatherers of §2 are
    // designed for (every minor-free φ-expander has a Θ(φ²n)-degree vertex).
    let hypercube = generators::hypercube(7);
    run_all("hypercube Q7 (expander)", &hypercube, 0);

    // A wheel: planar, one huge-degree hub — the canonical minor-free expander.
    let wheel = generators::wheel(256);
    run_all("wheel n=256 (planar expander)", &wheel, 0);

    // A grid cluster: low conductance; the tree pipeline is the sensible strategy and
    // the decomposition layer picks it for exactly this reason.
    let grid = generators::grid(16, 16);
    let leader = (0..grid.n()).max_by_key(|&v| grid.degree(v)).unwrap();
    run_all("grid 16x16 (low conductance)", &grid, leader);
}
