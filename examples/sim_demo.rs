//! Demo of the `mfd-sim` asynchronous discrete-event simulator: runs the
//! message-passing ports (BFS flooding, Cole–Vishkin colouring, Voronoi LDD)
//! on networks with four different latency models, cross-checks the unit-
//! latency run against the synchronous executor bit for bit, and shows what
//! the latency axis adds — makespans, stragglers, congestion peaks and the
//! α-synchronizer's overhead.
//!
//! Run with: `cargo run --release --example sim_demo`

use mfd_congest::{primitives, RoundMeter};
use mfd_core::programs::{BfsProgram, ColeVishkinProgram, VoronoiLddProgram};
use mfd_graph::properties::splitmix64;
use mfd_graph::{generators, WeightedGraph};
use mfd_runtime::ExecutorConfig;
use mfd_sim::{run_both, LatencyModel, SimConfig, Simulator};

fn main() {
    let g = generators::triangulated_grid(20, 20);
    println!(
        "graph: triangulated 20x20 grid, n = {}, m = {}\n",
        g.n(),
        g.m()
    );
    let cfg = ExecutorConfig::default();

    // 1. The cross-engine contract: with unit latency, the asynchronous
    //    simulation reproduces the synchronous execution exactly.
    let (sync, sim) = run_both(&g, &BfsProgram { root: 0 }, &cfg, LatencyModel::Fixed(1))
        .expect("BFS is model-compliant");
    assert!(sync
        .states
        .iter()
        .zip(&sim.states)
        .all(|(a, b)| a.depth == b.depth && a.parent == b.parent));
    assert_eq!(sync.rounds, sim.rounds);
    assert_eq!(sync.messages, sim.messages);
    println!(
        "unit latency == synchronous schedule: {} rounds, {} messages, makespan {} ticks",
        sim.rounds, sim.messages, sim.makespan
    );

    // 2. Latency models change the clock, never the answer. Same BFS, four
    //    networks.
    println!("\nBFS flood under different networks (same program, same seed):");
    println!(
        "  {:<28} {:>6} {:>9} {:>9} {:>10} {:>9}",
        "latency model", "rounds", "makespan", "msgs", "overhead%", "peak/edge"
    );
    let mut quotient_latency = WeightedGraph::new(g.n());
    for (u, v) in g.edges() {
        // A heterogeneous link map: a deterministic hash of the endpoint ids
        // assigns each edge a speed tier (1..=4 ticks), standing in for a
        // real topology's mixed link qualities.
        let tier = 1 + (u + v) % 4;
        quotient_latency.add_weight(u, v, tier as u64);
    }
    let models: Vec<(&str, LatencyModel)> = vec![
        ("Fixed(1)  — synchronous", LatencyModel::Fixed(1)),
        (
            "Uniform{1..=5} — jitter",
            LatencyModel::Uniform { lo: 1, hi: 5 },
        ),
        (
            "HeavyTail{a=1.2, cap=64}",
            LatencyModel::HeavyTail {
                min: 1,
                alpha: 1.2,
                cap: 64,
            },
        ),
        (
            "PerEdge(weighted graph)",
            LatencyModel::PerEdge(quotient_latency),
        ),
    ];
    let reference = Simulator::new(SimConfig::matching(&cfg, LatencyModel::Fixed(1)))
        .run(&g, &BfsProgram { root: 0 })
        .expect("model-compliant");
    for (name, latency) in models {
        let run = Simulator::new(SimConfig::matching(&cfg, latency))
            .run(&g, &BfsProgram { root: 0 })
            .expect("model-compliant");
        assert!(run
            .states
            .iter()
            .zip(&reference.states)
            .all(|(a, b)| a.depth == b.depth && a.parent == b.parent));
        println!(
            "  {:<28} {:>6} {:>9} {:>9} {:>9.1} {:>9}",
            name,
            run.rounds,
            run.makespan,
            run.messages,
            run.stats.overhead_ratio() * 100.0,
            run.stats.max_edge_in_flight(),
        );
    }

    // 3. The full pipeline under a heavy-tailed network: colour the BFS
    //    forest and grow Voronoi cells while stragglers delay the waves.
    let straggly = LatencyModel::HeavyTail {
        min: 1,
        alpha: 1.3,
        cap: 128,
    };
    let mut meter = RoundMeter::new();
    let tree = primitives::build_bfs_tree(&g, None, 0, &mut meter);
    let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
    let cv = ColeVishkinProgram::new(tree.parent.clone(), id);
    let run = Simulator::new(SimConfig::matching(&cfg, straggly.clone()))
        .run(&g, &cv)
        .expect("CV is model-compliant");
    let slowest = run.completion.iter().max().copied().unwrap_or(0);
    println!(
        "\ncole-vishkin on straggler links: {} rounds stretch to {} ticks \
         (slowest vertex done at {})",
        run.rounds, run.makespan, slowest
    );

    let centers: Vec<usize> = (0..9).map(|i| (i * g.n()) / 9).collect();
    let voronoi = VoronoiLddProgram::new(g.n(), &centers);
    let run = Simulator::new(SimConfig::matching(&cfg, straggly))
        .run(&g, &voronoi)
        .expect("Voronoi is model-compliant");
    println!(
        "voronoi ldd on straggler links: {} rounds in {} ticks, {} packets \
         ({} pure pulses), global in-flight peak {}",
        run.rounds,
        run.makespan,
        run.stats.packets,
        run.stats.pure_pulses,
        run.stats.peak_in_flight,
    );
}
