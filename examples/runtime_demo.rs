//! Demo of the `mfd-runtime` execution engine: runs the message-passing ports
//! (BFS flooding, Cole–Vishkin forest colouring, Voronoi LDD assignment) on a
//! triangulated grid and cross-checks them against the centralized
//! implementations and the CONGEST meter.
//!
//! Run with: `cargo run --release --example runtime_demo`

use mfd_congest::{primitives, RoundMeter};
use mfd_core::cole_vishkin::{color_rooted_forest_scheduled, cv_schedule_len, is_proper_coloring};
use mfd_core::ldd::voronoi_ldd;
use mfd_core::programs::{run_bfs, run_cole_vishkin, run_voronoi_ldd, BfsProgram};
use mfd_graph::generators;
use mfd_graph::properties::splitmix64;
use mfd_runtime::{run_on_clusters, Executor, ExecutorConfig};

fn main() {
    let g = generators::triangulated_grid(24, 24);
    println!(
        "graph: triangulated 24x24 grid, n = {}, m = {}",
        g.n(),
        g.m()
    );
    let executor = Executor::new(ExecutorConfig::default());

    // 1. BFS-tree construction as a real flood, validated by the meter.
    let (bfs, meter) = run_bfs(&g, 0, &executor).expect("BFS flood is model-compliant");
    let mut central_meter = RoundMeter::new();
    let central = primitives::build_bfs_tree(&g, None, 0, &mut central_meter);
    assert_eq!(bfs.parent, central.parent);
    println!(
        "bfs flood: height {}, executed rounds {} (metered baseline {}), messages {}, \
         max edge load {}/{} words",
        bfs.height,
        meter.rounds(),
        central_meter.rounds(),
        meter.messages(),
        meter.max_words_on_edge(),
        meter.capacity_words(),
    );

    // 2. Cole–Vishkin 3-colouring of the BFS spanning forest.
    let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
    let (coloring, meter) =
        run_cole_vishkin(&g, &central.parent, &id, &executor).expect("CV is model-compliant");
    let reference = color_rooted_forest_scheduled(&central.parent, &id, cv_schedule_len());
    assert_eq!(coloring.color, reference.color);
    assert!(is_proper_coloring(&central.parent, &coloring.color));
    println!(
        "cole-vishkin: {} rounds (schedule {} + 7), {} messages, colours used: {:?}",
        meter.rounds(),
        cv_schedule_len(),
        meter.messages(),
        {
            let mut used: Vec<u8> = coloring.color.clone();
            used.sort_unstable();
            used.dedup();
            used
        }
    );

    // 3. Multi-source Voronoi clustering from 9 spread-out centers.
    let centers: Vec<usize> = (0..9).map(|i| (i * g.n()) / 9).collect();
    let (clustering, meter) =
        run_voronoi_ldd(&g, &centers, &executor).expect("Voronoi flood is model-compliant");
    assert_eq!(clustering, voronoi_ldd(&g, &centers));
    println!(
        "voronoi ldd: {} clusters, {} rounds, {} messages, edge fraction cut {:.3}",
        clustering.num_clusters(),
        meter.rounds(),
        meter.messages(),
        clustering.edge_fraction(&g),
    );

    // 4. Cluster-scoped execution: BFS inside every Voronoi cell in parallel,
    //    with max-round (merge_parallel) accounting.
    let clusters: Vec<Vec<usize>> = clustering.clusters().map(|c| c.to_vec()).collect();
    let run = run_on_clusters(
        &g,
        &clusters,
        |_idx, _sub, _members| BfsProgram { root: 0 },
        &ExecutorConfig::default(),
    )
    .expect("per-cluster BFS is model-compliant");
    println!(
        "cluster-scoped bfs: {} clusters in parallel, slowest cluster {} rounds, \
         {} total messages",
        clusters.len(),
        run.max_rounds,
        run.meter.messages(),
    );
}
