//! Demo of the `mfd-replay` checkpoint/replay layer: journals a run with
//! periodic checkpoints stamped against the digest chain, round-trips the
//! journal through its byte encoding, kills the run at a checkpoint and
//! resumes it bit-identically (digest heads equal round for round), and
//! time-travels to an arbitrary round without re-running from scratch —
//! then does it all again under ARQ reliable delivery on a lossy network,
//! where the checkpoint carries the full transport state.
//!
//! Run with: `cargo run --release --example replay_demo`

use mfd_bench::replay::{executor_journal, faulted_journal, resume_executor, resume_faulted};
use mfd_bench::trace::DivergenceProbe;
use mfd_faults::{FaultModel, Reliable};
use mfd_graph::generators;
use mfd_replay::Journal;
use mfd_runtime::{ExecCheckpoint, Executor, ExecutorConfig};
use mfd_sim::LatencyModel;
use mfd_trace::NullSink;

fn main() {
    let g = generators::triangulated_grid(8, 8);
    let cfg = ExecutorConfig::default();
    let probe = DivergenceProbe::clean(16);
    println!(
        "graph: triangulated 8x8 grid, n = {}, m = {}\n",
        g.n(),
        g.m()
    );

    // 1. Journal a run: a checkpoint every 4 sealed rounds, each stamped
    //    with the digest-chain head at its round.
    let full = executor_journal(&g, &probe, &cfg, 4, "demo/probe").expect("probe runs");
    println!(
        "journaled executor run: {} rounds, {} checkpoints, final head {:016x}",
        full.journal.rounds(),
        full.journal.checkpoints.len(),
        full.sink.head()
    );

    // 2. The journal is a verified byte format: encode, decode (which
    //    re-verifies stamps, chain contiguity and the re-folded links),
    //    and the bytes round-trip exactly.
    let bytes = full.journal.to_bytes();
    let reloaded = Journal::from_bytes(&bytes).expect("journal verifies");
    assert_eq!(bytes, reloaded.to_bytes());
    println!(
        "journal round-trips through {} bytes (verified on load)\n",
        bytes.len()
    );

    // 3. Kill and resume: restore the round-8 checkpoint and continue. The
    //    resumed digest chain equals the uninterrupted run's, round for
    //    round — the crash was invisible.
    let resumed = resume_executor(&reloaded, 8, &g, &probe, &cfg).expect("journal resumes");
    assert_eq!(resumed.sink.chain(), full.sink.chain());
    assert_eq!(resumed.run.states, full.run.states);
    println!(
        "killed at round {}, replayed {} rounds: chain bit-identical over all {} rounds",
        resumed.from_round,
        resumed.rounds_replayed,
        reloaded.rounds()
    );

    // 4. Time travel: vertex states at round 10, reconstructed by stepping
    //    forward from the round-8 checkpoint — two rounds of work, not ten.
    let cp = reloaded
        .checkpoint_at(10)
        .expect("checkpoint below round 10");
    let restored: ExecCheckpoint<u64, u64> = reloaded.decode_checkpoint(cp).expect("decodes");
    let mut at_10: Option<Vec<u64>> = None;
    Executor::new(cfg.clone())
        .resume_checkpointed(&g, &probe, restored, &mut NullSink, 1, &mut |c, _| {
            if c.round == 10 {
                at_10 = Some(c.states);
            }
        })
        .expect("probe runs");
    let states = at_10.expect("round 10 was re-executed");
    println!(
        "time travel from round {}: v0 state at round 10 is {:#018x}\n",
        cp.round, states[0]
    );

    // 5. The same guarantee under faults: wrap the probe in the ARQ adapter,
    //    lose 20% of packets i.i.d., journal, kill, resume. The checkpoint
    //    carries send windows, reorder buffers and cumulative acks; fault
    //    fates are pure in (seed, edge, round, index) and re-derived, so the
    //    continuation meets exactly the fate sequence the full run saw.
    let wrapped = Reliable::new(DivergenceProbe::clean(16));
    let model = FaultModel::iid_loss(0.2);
    let latency = LatencyModel::Uniform { lo: 1, hi: 3 };
    let faulted = faulted_journal(
        &g,
        &wrapped,
        &model,
        &cfg,
        latency.clone(),
        8,
        "demo/faulted",
    )
    .expect("probe runs");
    let mid = &faulted.journal.checkpoints[faulted.journal.checkpoints.len() / 2];
    let resumed = resume_faulted(
        &faulted.journal,
        mid.round,
        &g,
        &wrapped,
        &model,
        &cfg,
        latency,
    )
    .expect("journal resumes");
    assert_eq!(resumed.sink.chain(), faulted.sink.chain());
    println!(
        "under 20% loss + Reliable<probe>: {} rounds, {} messages of ARQ traffic, \
         killed at round {}, resumed bit-identically (head {:016x})",
        faulted.journal.rounds(),
        faulted.run.run.messages,
        mid.round,
        resumed.sink.head()
    );
}
