//! Distributed property testing of planarity and other additive minor-closed
//! properties (paper Corollary 6.6).
//!
//! Run with:
//! ```text
//! cargo run --release --example property_testing -p mfd-apps
//! ```

use mfd_apps::property_testing::{test_property, Forests, Planarity, TreewidthAtMostTwo};
use mfd_graph::generators;

fn main() {
    let epsilon = 0.2;

    println!("=== planarity tester, ε = {epsilon} ===");
    let cases = vec![
        (
            "triangulated grid 20x20 (planar)",
            generators::triangulated_grid(20, 20),
        ),
        (
            "random Apollonian n=500 (planar)",
            generators::random_apollonian(500, 3),
        ),
        ("Apollonian + 30% random chords (ε-far)", {
            let base = generators::random_apollonian(300, 3);
            let chords = base.m() * 3 / 10;
            generators::with_random_chords(&base, chords, 9)
        }),
        ("complete graph K40 (very far)", generators::complete(40)),
        (
            "4x4x... torus grid (genus 1)",
            generators::torus_grid(12, 12),
        ),
    ];
    for (name, g) in cases {
        let outcome = test_property(&g, &Planarity, epsilon);
        println!(
            "  {:45} -> {}  (rounds {}, clusters {}, reason {:?})",
            name,
            if outcome.accepted { "ACCEPT" } else { "REJECT" },
            outcome.rounds,
            outcome.clusters,
            outcome.reason
        );
    }

    println!("\n=== forest tester, ε = {epsilon} ===");
    let forest = generators::random_tree(400, 5).disjoint_union(&generators::random_tree(200, 6));
    let not_forest = generators::triangulated_grid(12, 12);
    println!(
        "  forest of two trees                      -> {}",
        if test_property(&forest, &Forests, epsilon).accepted {
            "ACCEPT"
        } else {
            "REJECT"
        }
    );
    println!(
        "  triangulated grid                        -> {}",
        if test_property(&not_forest, &Forests, epsilon).accepted {
            "ACCEPT"
        } else {
            "REJECT"
        }
    );

    println!("\n=== treewidth ≤ 2 tester, ε = {epsilon} ===");
    let sp = generators::random_series_parallel(300, 0.5, 8);
    let dense = generators::k_tree(200, 4, 3);
    println!(
        "  random series-parallel graph             -> {}",
        if test_property(&sp, &TreewidthAtMostTwo, epsilon).accepted {
            "ACCEPT"
        } else {
            "REJECT"
        }
    );
    println!(
        "  random 4-tree                            -> {}",
        if test_property(&dense, &TreewidthAtMostTwo, epsilon).accepted {
            "ACCEPT"
        } else {
            "REJECT"
        }
    );
}
