//! Demo of the `mfd-prof` wall-clock profiling overlay: one sharded LDD run
//! measured per shard and per phase, with the perturbation-freedom contract
//! checked live — the profiled run is asserted bit-identical (states,
//! meters, digest chains) to an unprofiled twin before any numbers are
//! shown. Prints the straggler summary, the busiest traffic-matrix rows,
//! and a `localize` self-test that calibrates a regression threshold from
//! same-build noise and then pinpoints a synthetic slowdown.
//!
//! Run with: `cargo run --release --example profile_demo`

use mfd_bench::profiling::{
    csv_phase_series, parse_rounds_csv, profile_sharded_algo, rounds_csv, Algo,
};
use mfd_graph::gen;
use mfd_prof::{calibrate_threshold, chrome_profile, first_regression};
use mfd_runtime::profile::PHASE_STEP;

fn main() {
    let csr = gen::mesh(200, 200);
    println!(
        "graph: mesh-200x200 (n = {}, m = {}), program: voronoi-ldd-64, 16 shards\n",
        csr.n(),
        csr.m()
    );

    // 1. A profiled, verified run. The harness double-runs the workload and
    //    asserts the profiled execution bit-identical to the plain one —
    //    instrumentation lives outside every sequential commit point.
    let run = profile_sharded_algo(&csr, Algo::Ldd(64), 16, 0, "profile_demo");
    print!("{}", run.profile.summary());
    println!(
        "verified: digest head {:016x} identical with and without the profiler\n",
        run.digest_head
    );

    // 2. Attribution: the overlay accounts where the wall time went, and
    //    publishes what it could not attribute instead of hiding it.
    let attribution = run.profile.attribution();
    println!(
        "attribution: {:.1}% of {:.1} ms wall attributed to named phases ({:.2} ms other)",
        attribution * 100.0,
        run.profile.total_ns as f64 / 1e6,
        run.profile.unattributed_ns() as f64 / 1e6
    );
    assert!(
        attribution >= 0.95,
        "the overlay must attribute at least 95% of wall time"
    );

    // 3. The traffic matrix: who talks to whom, exactly (row sums are the
    //    router's per-shard send counts — asserted in the harness).
    let matrix = run.profile.traffic_totals();
    let sent = run.profile.sent_totals();
    let k = run.profile.shards;
    let busiest = (0..k).max_by_key(|&s| sent[s]).expect("non-empty");
    let row: Vec<u64> = (0..k).map(|d| matrix[busiest * k + d]).collect();
    println!(
        "\nbusiest sender: shard {busiest} ({} messages), row: {row:?}",
        sent[busiest]
    );

    // 4. Chrome trace export on the wall clock: one track per shard.
    let trace = chrome_profile(&run.profile);
    println!(
        "chrome trace: {} bytes (load in chrome://tracing or Perfetto)",
        trace.len()
    );

    // 5. Localize: calibrate the noise threshold from a second run of the
    //    same build, then binary-search a synthetic step-phase slowdown
    //    injected from round 5 onward. The injected factor scales with the
    //    calibrated threshold (twice it, plus 1 ms so even short rounds
    //    clear the noise floor) — on a noisy machine the threshold is
    //    loose, and a slowdown below it is indistinguishable from jitter
    //    by design.
    let series = |r: &mfd_bench::profiling::ProfiledRun| {
        let rows = parse_rounds_csv(&rounds_csv(&r.profile)).expect("own CSV parses");
        csv_phase_series(&rows, PHASE_STEP)
    };
    let base = series(&run);
    let twin = series(&profile_sharded_algo(
        &csr,
        Algo::Ldd(64),
        16,
        0,
        "profile_demo_twin",
    ));
    let threshold = calibrate_threshold(&base, &twin);
    let factor = (threshold * 2.0).ceil() as u64;
    let slowed: Vec<u64> = base
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i >= 5 {
                v.max(1) * factor + 1_000_000
            } else {
                v
            }
        })
        .collect();
    let onset = first_regression(&base, &slowed, threshold);
    println!(
        "\nlocalize: calibrated threshold {threshold:.3}; injected {factor}x+1ms slowdown \
         from round 5 localized at {onset:?}"
    );
    assert_eq!(onset, Some(5), "the localizer must name the onset round");
    println!("profile_demo: all checks passed");
}
