//! Distributed (1 − ε)-approximate maximum independent set on planar networks
//! (paper Corollary 6.5), compared against the greedy baseline and — on the smaller
//! instance — the exact optimum.
//!
//! Run with:
//! ```text
//! cargo run --release --example planar_mis -p mfd-apps
//! ```

use mfd_apps::mis::{approximate_mis, MisConfig};
use mfd_apps::solvers;
use mfd_graph::generators;

fn main() {
    let instances = vec![
        (
            "triangulated grid 16x16",
            generators::triangulated_grid(16, 16),
        ),
        (
            "random Apollonian n=400",
            generators::random_apollonian(400, 7),
        ),
        ("wheel n=200", generators::wheel(200)),
        ("path n=500 (lower-bound family)", generators::path(500)),
    ];

    for (name, g) in instances {
        println!("\n=== {name}: n = {}, m = {} ===", g.n(), g.m());
        let greedy = solvers::greedy_independent_set(&g).len();
        println!("  greedy baseline              : {greedy}");
        for epsilon in [0.4, 0.2, 0.1] {
            let result = approximate_mis(&g, &MisConfig::new(epsilon));
            assert!(solvers::is_independent_set(&g, &result.independent_set));
            println!(
                "  ε = {:<4}: |IS| = {:4}  rounds = {:6}  clusters = {:4}  exact-per-cluster = {}",
                epsilon,
                result.independent_set.len(),
                result.rounds,
                result.clusters,
                result.all_clusters_exact
            );
        }
    }
}
