//! Cross-crate integration tests for the §2 information-gathering machinery,
//! including property-based tests (proptest) on the metering and gathering
//! invariants.

use mfd_congest::{primitives, Message, RoundMeter};
use mfd_graph::{generators, Graph};
use mfd_routing::gather::{gather_to_leader, GatherStrategy};
use mfd_routing::load_balance::LoadBalanceParams;
use mfd_routing::split::ExpanderSplit;
use mfd_routing::walks::{plan_walk_schedule, WalkParams};
use proptest::prelude::*;

#[test]
fn every_strategy_delivers_on_minor_free_expanders() {
    // Wheels are the canonical planar graphs with a Θ(n)-degree vertex — exactly the
    // structure Lemma 2.7 guarantees inside minor-free expanders.
    let g = generators::wheel(96);
    for (strategy, floor) in [
        (GatherStrategy::TreePipeline, 1.0),
        (
            GatherStrategy::LoadBalance(LoadBalanceParams::default()),
            0.9,
        ),
        (GatherStrategy::WalkSchedule(WalkParams::default()), 0.8),
    ] {
        let mut meter = RoundMeter::new();
        let report = gather_to_leader(&g, 0, 0.1, &strategy, &mut meter);
        assert!(
            report.delivered_fraction >= floor,
            "{} delivered only {}",
            report.strategy,
            report.delivered_fraction
        );
        assert_eq!(report.rounds, meter.rounds());
    }
}

#[test]
fn walk_schedules_are_deterministic_and_reusable() {
    let g = generators::hypercube(5);
    let p1 = plan_walk_schedule(&g, 0, 0.1, &WalkParams::default());
    let p2 = plan_walk_schedule(&g, 0, 0.1, &WalkParams::default());
    assert_eq!(p1.schedule, p2.schedule);
    assert!(p1.good_fraction >= 0.85);
}

#[test]
fn expander_split_of_planar_graphs_has_bounded_degree() {
    for g in [
        generators::random_apollonian(200, 3),
        generators::wheel(150),
        generators::triangulated_grid(10, 10),
    ] {
        let split = ExpanderSplit::build(&g);
        assert!(split.max_degree() <= 10);
        assert_eq!(split.external.len(), g.m());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The meter counts exactly one round per submitted round and never accepts a
    /// message along a non-edge.
    #[test]
    fn meter_counts_rounds_and_rejects_non_edges(n in 4usize..40, seed in 0u64..1000) {
        let g = generators::random_gnm(n, 2 * n, seed);
        let mut meter = RoundMeter::new();
        let mut expected = 0u64;
        for (u, v) in g.edges().take(10) {
            meter.round(&g, &[Message::word(u, v)]).unwrap();
            expected += 1;
        }
        prop_assert_eq!(meter.rounds(), expected);
        // A self-loop message is never a valid edge.
        let err = meter.round(&g, &[Message::word(0, 0)]);
        prop_assert!(err.is_err());
    }

    /// Pipelined tree gather always delivers every message of a connected graph, and
    /// uses at least max(height, messages-through-root-bottleneck) rounds.
    #[test]
    fn tree_gather_delivers_everything(rows in 2usize..6, cols in 2usize..6) {
        let g = generators::grid(rows, cols);
        let mut meter = RoundMeter::new();
        let tree = primitives::build_bfs_tree(&g, None, 0, &mut meter);
        let counts: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
        let delivered = primitives::upcast_pipeline(&g, &tree, &counts, &mut meter);
        prop_assert_eq!(delivered as usize, 2 * g.m());
        prop_assert!(meter.rounds() >= tree.height as u64);
    }

    /// The gather API reports per-vertex deliveries that sum to the global count and
    /// never exceed the vertex degree.
    #[test]
    fn gather_reports_are_internally_consistent(n in 5usize..30, seed in 0u64..500) {
        let g = generators::random_apollonian(n.max(4), seed);
        let leader = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
        let mut meter = RoundMeter::new();
        let report = gather_to_leader(&g, leader, 0.2, &GatherStrategy::TreePipeline, &mut meter);
        let sum: usize = report.per_vertex_delivered.iter().sum();
        prop_assert_eq!(sum, 2 * g.m());
        for v in 0..g.n() {
            prop_assert!(report.per_vertex_delivered[v] <= g.degree(v));
        }
    }

    /// The expander split is always a simple graph with one port per edge endpoint
    /// and constant-degree gadgets, for arbitrary (not necessarily minor-free)
    /// inputs.
    #[test]
    fn expander_split_structure(n in 2usize..40, extra in 0usize..60, seed in 0u64..100) {
        let g = generators::random_gnm(n, n + extra, seed);
        let split = ExpanderSplit::build(&g);
        prop_assert_eq!(split.external.len(), g.m());
        let expected_ports: usize = (0..g.n()).map(|v| g.degree(v).max(1)).sum();
        prop_assert_eq!(split.num_ports(), expected_ports);
        for &((u, v), (pu, pv)) in &split.external {
            prop_assert_eq!(split.owner[pu], u);
            prop_assert_eq!(split.owner[pv], v);
        }
    }
}

#[test]
fn congest_bandwidth_is_never_exceeded_by_bfs_and_convergecast() {
    // The primitives promise ≤ 1 word per directed edge per round; RoundMeter::round
    // enforces it, so simply running them is the test.
    for g in [
        generators::triangulated_grid(8, 8),
        generators::wheel(60),
        generators::random_tree(120, 3),
    ] {
        let mut meter = RoundMeter::new();
        let tree = primitives::build_bfs_tree(&g, None, 0, &mut meter);
        let degrees: Vec<u64> = (0..g.n()).map(|v| g.degree(v) as u64).collect();
        primitives::convergecast_argmax(&g, &tree, &degrees, &mut meter);
        primitives::convergecast_sum(&g, &tree, &degrees, &mut meter);
        assert!(meter.max_words_on_edge() <= meter.capacity_words());
    }
}

#[test]
fn gather_works_on_disconnected_and_tiny_graphs() {
    let mut meter = RoundMeter::new();
    let g = Graph::new(1);
    let report = gather_to_leader(&g, 0, 0.1, &GatherStrategy::TreePipeline, &mut meter);
    assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    assert_eq!(report.rounds, 0);
}
