//! Structural lint for the workspace books in `docs/`.
//!
//! The Rust fences in the books are compiled and executed as doctests via
//! `mfd::docs` (`cargo test --doc -p mfd`). What doctests cannot see is
//! *structure*: an untagged code fence silently opts out of doctesting, a
//! renamed heading silently breaks every `#anchor` link pointing at it, and
//! a book can stop mentioning a crate without anything failing. This
//! harness pins those down.

const ARCHITECTURE: &str = include_str!("../docs/ARCHITECTURE.md");
const DETERMINISM: &str = include_str!("../docs/DETERMINISM.md");
const PROFILING: &str = include_str!("../docs/PROFILING.md");
const README: &str = include_str!("../README.md");

/// Every fence opener must carry a language tag: `rust` (compiled and run
/// as a doctest of `mfd::docs`) or `text` (deliberately inert). A bare
/// ``` ``` ``` would be treated as Rust by rustdoc yet is almost always a
/// diagram — force the author to choose.
fn check_fences(name: &str, body: &str) -> usize {
    let mut rust_fences = 0;
    let mut open = false;
    for (i, line) in body.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with("```") {
            continue;
        }
        if open {
            assert_eq!(
                trimmed,
                "```",
                "{name}:{}: fence closer must be bare ```",
                i + 1
            );
            open = false;
        } else {
            let tag = trimmed.trim_start_matches('`');
            assert!(
                tag == "rust" || tag == "text",
                "{name}:{}: fence opener must be tagged ```rust or ```text, got {trimmed:?}",
                i + 1
            );
            if tag == "rust" {
                rust_fences += 1;
            }
            open = true;
        }
    }
    assert!(!open, "{name}: unclosed code fence");
    rust_fences
}

#[test]
fn every_fence_is_tagged_and_each_book_has_doctests() {
    assert!(check_fences("ARCHITECTURE.md", ARCHITECTURE) >= 2);
    assert!(check_fences("DETERMINISM.md", DETERMINISM) >= 2);
    assert!(check_fences("PROFILING.md", PROFILING) >= 2);
}

#[test]
fn architecture_covers_every_crate() {
    for krate in [
        "mfd-graph",
        "mfd-congest",
        "mfd-runtime",
        "mfd-sim",
        "mfd-core",
        "mfd-routing",
        "mfd-faults",
        "mfd-trace",
        "mfd-prof",
        "mfd-replay",
        "mfd-apps",
        "mfd-bench",
    ] {
        assert!(
            ARCHITECTURE.contains(&format!("\n## {krate}")),
            "ARCHITECTURE.md lost its `## {krate}` section"
        );
    }
}

/// GitHub's slug for a heading: lowercased, spaces to dashes, punctuation
/// dropped. Enough for the ASCII headings these books use.
fn slugs(body: &str) -> Vec<String> {
    body.lines()
        .filter_map(|l| l.strip_prefix('#'))
        .map(|h| {
            h.trim_start_matches('#')
                .trim()
                .chars()
                .filter_map(|c| match c {
                    ' ' => Some('-'),
                    c if c.is_ascii_alphanumeric() || c == '-' || c == '_' => {
                        Some(c.to_ascii_lowercase())
                    }
                    _ => None,
                })
                .collect()
        })
        .collect()
}

#[test]
fn cross_links_resolve() {
    // (source, link target, required anchor in the target)
    let links = [
        (
            "ARCHITECTURE.md",
            ARCHITECTURE,
            "DETERMINISM.md",
            DETERMINISM,
        ),
        (
            "DETERMINISM.md",
            DETERMINISM,
            "ARCHITECTURE.md",
            ARCHITECTURE,
        ),
        ("PROFILING.md", PROFILING, "ARCHITECTURE.md", ARCHITECTURE),
        ("PROFILING.md", PROFILING, "DETERMINISM.md", DETERMINISM),
        ("ARCHITECTURE.md", ARCHITECTURE, "PROFILING.md", PROFILING),
        ("DETERMINISM.md", DETERMINISM, "PROFILING.md", PROFILING),
    ];
    for (src_name, src, dst_name, dst) in links {
        assert!(
            src.contains(&format!("({dst_name})")) || src.contains(&format!("({dst_name}#")),
            "{src_name} no longer links to {dst_name}"
        );
        // Every `(DST.md#anchor)` reference must name a real heading there.
        let dst_slugs = slugs(dst);
        for piece in src.split(&format!("({dst_name}#")).skip(1) {
            let anchor = piece.split(')').next().unwrap();
            assert!(
                dst_slugs.iter().any(|s| s == anchor),
                "{src_name} links to {dst_name}#{anchor}, but no such heading exists \
                 (headings: {dst_slugs:?})"
            );
        }
    }
}

#[test]
fn readme_points_at_the_books() {
    for book in [
        "docs/ARCHITECTURE.md",
        "docs/DETERMINISM.md",
        "docs/PROFILING.md",
    ] {
        assert!(
            README.contains(book),
            "README.md must link to {book} so the books are discoverable"
        );
    }
}

#[test]
fn readme_lists_every_bench_section() {
    // The README's benchmark ladder must mention every BENCH_*.json the
    // report binary can emit — this is exactly the drift the docs issue
    // was opened about.
    for section in [
        "BENCH_runtime.json",
        "BENCH_gather.json",
        "BENCH_faults.json",
        "BENCH_edt.json",
        "BENCH_trace.json",
        "BENCH_replay.json",
        "BENCH_scale.json",
        "BENCH_profile.json",
    ] {
        assert!(
            README.contains(section),
            "README.md benchmark ladder is missing {section}"
        );
    }
}
