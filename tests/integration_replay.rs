//! Cross-crate integration tests for the `mfd-replay` checkpoint/resume
//! layer: property tests that a run killed at a random checkpoint and
//! resumed reproduces the uninterrupted run bit-for-bit — equal final
//! states and a digest chain equal round-for-round — for BFS and
//! Cole–Vishkin on both engines; that a gathered cluster under i.i.d. loss
//! with the `Reliable` adapter resumes bit-identically (ARQ transport state
//! travels in the checkpoint, fault fates are pure and re-derived); and
//! that journal serialization is a deterministic bijection (encode →
//! decode → encode is byte-identical, and identical runs journal identical
//! bytes).

use mfd_bench::replay::{executor_journal, resume_executor, resume_sim, sim_journal};
use mfd_bench::trace::DivergenceProbe;
use mfd_bench::{acceptance_families, acceptance_leader};
use mfd_congest::{primitives, RoundMeter};
use mfd_core::programs::{BfsProgram, ColeVishkinProgram};
use mfd_faults::{FaultModel, Reliable};
use mfd_graph::properties::splitmix64;
use mfd_graph::{generators, Graph};
use mfd_replay::Journal;
use mfd_routing::programs::TreeGatherProgram;
use mfd_runtime::{Executor, ExecutorConfig};
use mfd_sim::{FaultOutcome, LatencyModel, SimConfig, Simulator};
use mfd_trace::{DigestSink, NullSink};
use proptest::prelude::*;

/// A random connected graph: a uniform random tree plus random chords.
fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let tree = generators::random_tree(n, seed);
    generators::with_random_chords(&tree, extra, splitmix64(seed))
}

/// BFS spanning-forest parent pointers, for Cole–Vishkin instances.
fn spanning_forest(g: &Graph) -> Vec<usize> {
    let mut meter = RoundMeter::new();
    primitives::build_bfs_tree(g, None, 0, &mut meter)
        .parent
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill-and-resume is invisible: checkpoint a run every few rounds,
    /// pick one checkpoint at random (the "kill point"), resume from it
    /// with the digest sink restored alongside, and the continued run has
    /// the same final states, round/message accounting, and a digest chain
    /// equal round-for-round to the uninterrupted run — for BFS and
    /// Cole–Vishkin on the synchronous executor and on the event engine
    /// under skewed link latency.
    #[test]
    fn killed_and_resumed_runs_are_bit_identical_on_both_engines(
        n in 4usize..20,
        extra in 0usize..16,
        seed in 0u64..1_000_000,
        every in 1u64..5,
        pick in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        let cfg = ExecutorConfig {
            seed: splitmix64(seed ^ 0x5EED),
            ..ExecutorConfig::default()
        };
        let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
        let cv = ColeVishkinProgram::new(spanning_forest(&g), id);
        let bfs = BfsProgram { root: 0 };
        let latency = LatencyModel::Uniform { lo: 1, hi: 3 };

        macro_rules! check {
            ($program:expr) => {{
                let exec = Executor::new(cfg.clone());
                let mut sink = DigestSink::new();
                let mut cps = Vec::new();
                let full = exec
                    .run_checkpointed(&g, $program, &mut sink, every, &mut |cp, s: &DigestSink| {
                        cps.push((cp, s.export()));
                    })
                    .unwrap();
                if !cps.is_empty() {
                    let (cp, digests) = cps.swap_remove((pick as usize) % cps.len());
                    let mut rsink = DigestSink::restore(digests);
                    let resumed = exec.resume_traced(&g, $program, cp, &mut rsink).unwrap();
                    prop_assert_eq!(&resumed.states, &full.states);
                    prop_assert_eq!(resumed.rounds, full.rounds);
                    prop_assert_eq!(resumed.messages, full.messages);
                    prop_assert_eq!(rsink.chain(), sink.chain());
                    prop_assert_eq!(rsink.head(), sink.head());
                }

                let sim = Simulator::new(SimConfig::matching(&cfg, latency.clone()));
                let mut sink = DigestSink::new();
                let mut cps = Vec::new();
                let full = sim
                    .run_checkpointed(&g, $program, &mut sink, every, &mut |cp, s: &DigestSink| {
                        cps.push((cp, s.export()));
                    })
                    .unwrap();
                if !cps.is_empty() {
                    let (cp, digests) = cps.swap_remove((pick as usize) % cps.len());
                    let mut rsink = DigestSink::restore(digests);
                    let resumed = sim.resume_traced(&g, $program, cp, &mut rsink).unwrap();
                    prop_assert_eq!(&resumed.states, &full.states);
                    prop_assert_eq!(resumed.rounds, full.rounds);
                    prop_assert_eq!(resumed.messages, full.messages);
                    prop_assert_eq!(resumed.makespan, full.makespan);
                    prop_assert_eq!(rsink.chain(), sink.chain());
                }
            }};
        }
        check!(&bfs);
        check!(&cv);
    }

    /// Journal serialization is a deterministic bijection: encode → decode
    /// → encode is byte-identical, and re-running the same configuration
    /// journals the same bytes — on both engines.
    #[test]
    fn journal_byte_roundtrip_is_deterministic(
        n in 4usize..20,
        extra in 0usize..16,
        seed in 0u64..1_000_000,
        rounds in 4u64..12,
        every in 1u64..5,
    ) {
        let g = random_connected(n, extra, seed);
        let cfg = ExecutorConfig {
            seed: splitmix64(seed ^ 0x10AD),
            ..ExecutorConfig::default()
        };
        let probe = DivergenceProbe::clean(rounds);

        let a = executor_journal(&g, &probe, &cfg, every, "prop/exec").unwrap();
        let b = executor_journal(&g, &probe, &cfg, every, "prop/exec").unwrap();
        let bytes = a.journal.to_bytes();
        prop_assert_eq!(&bytes, &b.journal.to_bytes());
        let decoded = Journal::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&bytes, &decoded.to_bytes());

        let latency = LatencyModel::Uniform { lo: 1, hi: 3 };
        let a = sim_journal(&g, &probe, &cfg, latency.clone(), every, "prop/sim").unwrap();
        let b = sim_journal(&g, &probe, &cfg, latency, every, "prop/sim").unwrap();
        let bytes = a.journal.to_bytes();
        prop_assert_eq!(&bytes, &b.journal.to_bytes());
        let decoded = Journal::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&bytes, &decoded.to_bytes());
    }

    /// Resuming through the byte codec (journal → decode → resume) lands on
    /// the same chain as the uninterrupted run, from every checkpoint the
    /// journal holds — the `replay` bin's `resume` subcommand as a property.
    #[test]
    fn every_journal_checkpoint_resumes_to_the_same_chain(
        n in 4usize..16,
        extra in 0usize..12,
        seed in 0u64..1_000_000,
        rounds in 4u64..10,
    ) {
        let g = random_connected(n, extra, seed);
        let cfg = ExecutorConfig::default();
        let probe = DivergenceProbe::clean(rounds);

        let full = executor_journal(&g, &probe, &cfg, 2, "prop/exec").unwrap();
        for cp in &full.journal.checkpoints {
            let r = resume_executor(&full.journal, cp.round, &g, &probe, &cfg).unwrap();
            prop_assert_eq!(r.from_round, cp.round);
            prop_assert_eq!(r.sink.chain(), full.sink.chain());
            prop_assert_eq!(&r.run.states, &full.run.states);
        }

        let latency = LatencyModel::Uniform { lo: 1, hi: 3 };
        let full = sim_journal(&g, &probe, &cfg, latency.clone(), 2, "prop/sim").unwrap();
        for cp in &full.journal.checkpoints {
            let r = resume_sim(&full.journal, cp.round, &g, &probe, &cfg, latency.clone()).unwrap();
            prop_assert_eq!(r.sink.chain(), full.sink.chain());
            prop_assert_eq!(&r.run.states, &full.run.states);
            prop_assert_eq!(r.run.makespan, full.run.makespan);
        }
    }
}

/// A gathered cluster under i.i.d. loss with `Reliable<TreeGatherProgram>`
/// resumes bit-identically: the checkpoint carries
/// the full ARQ transport state (send windows, reorder buffers, cumulative
/// acks) and the fault fates are pure in `(seed, edge, round, index)`, so
/// the continuation meets exactly the fate sequence the uninterrupted run
/// saw. Gather states hold floats (not hashable), so the comparison is on
/// the inner protocol states, aggregate ARQ statistics, and the run's
/// accounting rather than a digest chain.
#[test]
fn gathered_cluster_under_loss_resumes_bit_identically() {
    type P = TreeGatherProgram;
    for (name, g) in acceptance_families() {
        let leader = acceptance_leader(&g);
        let program = Reliable::new(TreeGatherProgram::new(&g, leader));
        let model = FaultModel::iid_loss(0.2);
        let cfg = ExecutorConfig::default();
        let sim = Simulator::new(SimConfig::matching(
            &cfg,
            LatencyModel::Uniform { lo: 1, hi: 3 },
        ));

        let mut cps = Vec::new();
        let full = sim
            .run_with_faults_checkpointed(&g, &program, &model, &mut NullSink, 8, &mut |cp, _| {
                cps.push(cp)
            })
            .unwrap();
        assert!(
            matches!(full.outcome, FaultOutcome::Completed),
            "{name}: the acceptance run must complete under 0.2 loss"
        );
        let stats = Reliable::<P>::stats(&full.run.states);
        assert!(stats.retransmitted > 0, "{name}: loss caused no ARQ work");
        assert!(!cps.is_empty(), "{name}: no checkpoints captured");

        // Resuming is a full suffix re-execution, so sample the earliest,
        // middle, and final checkpoints rather than paying for every one.
        let picks: Vec<usize> = [0, cps.len() / 2, cps.len() - 1]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for (i, cp) in cps.into_iter().enumerate() {
            if !picks.contains(&i) {
                continue;
            }
            let round = cp.round;
            let resumed = sim.resume_with_faults(&g, &program, &model, cp).unwrap();
            assert!(
                matches!(resumed.outcome, FaultOutcome::Completed),
                "{name}@{round}: resumed run did not complete"
            );
            assert_eq!(
                Reliable::<P>::inner_states_cloned(&resumed.run.states),
                Reliable::<P>::inner_states_cloned(&full.run.states),
                "{name}@{round}: inner gather states diverged after resume"
            );
            assert_eq!(
                Reliable::<P>::stats(&resumed.run.states),
                stats,
                "{name}@{round}: ARQ statistics diverged after resume"
            );
            assert_eq!(resumed.run.rounds, full.run.rounds, "{name}@{round}");
            assert_eq!(resumed.run.messages, full.run.messages, "{name}@{round}");
            assert_eq!(resumed.run.makespan, full.run.makespan, "{name}@{round}");
        }
    }
}

/// The faulted acceptance configuration journals through the byte codec and
/// resumes with the digest chain equal round-for-round — the
/// `report --section replay` in-process assertion, pinned here so the gate
/// cannot be weakened without a test noticing. The probe's u64 states keep
/// `ReliableState` hashable, so this configuration (unlike the float-state
/// gather above) carries a digest chain end-to-end.
#[test]
fn faulted_reliable_probe_journal_resumes_bit_identically() {
    use mfd_bench::replay::{faulted_journal, resume_faulted};

    let g = generators::wheel(32);
    let cfg = ExecutorConfig::default();
    let wrapped = Reliable::new(DivergenceProbe::clean(12));
    let model = FaultModel::iid_loss(0.25);
    let latency = LatencyModel::Uniform { lo: 1, hi: 3 };

    let full = faulted_journal(
        &g,
        &wrapped,
        &model,
        &cfg,
        latency.clone(),
        5,
        "wheel-32/faulted",
    )
    .unwrap();
    assert!(matches!(full.run.outcome, FaultOutcome::Completed));
    assert!(
        full.journal.checkpoints.len() >= 2,
        "the run must be long enough to checkpoint more than once"
    );

    // The journal survives a byte round-trip and still resumes.
    let reloaded = Journal::from_bytes(&full.journal.to_bytes()).unwrap();
    for cp in &reloaded.checkpoints {
        let r = resume_faulted(
            &reloaded,
            cp.round,
            &g,
            &wrapped,
            &model,
            &cfg,
            latency.clone(),
        )
        .unwrap();
        assert_eq!(r.from_round, cp.round);
        assert_eq!(r.sink.chain(), full.sink.chain(), "@{}", cp.round);
        assert_eq!(
            Reliable::<DivergenceProbe>::inner_states_cloned(&r.run.run.states),
            Reliable::<DivergenceProbe>::inner_states_cloned(&full.run.run.states),
            "@{}",
            cp.round
        );
    }
}
