//! Cross-crate integration tests for the `mfd-runtime` execution engine:
//! differential validation of the node-program ports against the centralized
//! implementations on several graph families, model-compliance properties
//! (the executor never accepts a round the meter would reject), determinism
//! across thread counts, and cluster-scoped parallel composition.

use mfd_congest::{primitives, CongestError, Message, RoundMeter};
use mfd_core::cole_vishkin::{color_rooted_forest_scheduled, cv_schedule_len, is_proper_coloring};
use mfd_core::ldd::{chop_ldd, region_growing_ldd, voronoi_ldd};
use mfd_core::programs::{run_bfs, run_cole_vishkin, run_voronoi_ldd, BfsProgram};
use mfd_graph::properties::splitmix64;
use mfd_graph::{generators, Graph};
use mfd_runtime::{
    run_on_clusters, Envelope, Executor, ExecutorConfig, NodeCtx, NodeProgram, Outbox, RuntimeError,
};
use proptest::prelude::*;

/// The acceptance families: a triangulated grid, a wheel (planar with a
/// Θ(n)-degree hub) and a hypercube (a non-minor-free control).
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("triangulated_grid", generators::triangulated_grid(9, 9)),
        ("wheel", generators::wheel(64)),
        ("hypercube", generators::hypercube(6)),
    ]
}

fn executor() -> Executor {
    Executor::new(ExecutorConfig::default())
}

#[test]
fn bfs_port_matches_centralized_on_all_families() {
    for (name, g) in families() {
        let mut meter = RoundMeter::new();
        let central = primitives::build_bfs_tree(&g, None, 0, &mut meter);
        let (run, dist_meter) = run_bfs(&g, 0, &executor()).unwrap();
        assert_eq!(run.parent, central.parent, "{name}: parents differ");
        assert_eq!(run.depth, central.depth, "{name}: depths differ");
        // Flooding takes exactly one round beyond the tree height (the last
        // level's announcements still have to be delivered).
        assert_eq!(dist_meter.rounds(), central.height as u64 + 1, "{name}");
        assert!(dist_meter.max_words_on_edge() <= dist_meter.capacity_words());
    }
}

#[test]
fn cole_vishkin_port_matches_centralized_on_all_families() {
    for (name, g) in families() {
        // Colour the BFS spanning forest of the family.
        let mut meter = RoundMeter::new();
        let tree = primitives::build_bfs_tree(&g, None, 0, &mut meter);
        let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
        let (coloring, cv_meter) = run_cole_vishkin(&g, &tree.parent, &id, &executor()).unwrap();
        let central = color_rooted_forest_scheduled(&tree.parent, &id, cv_schedule_len());
        assert_eq!(coloring.color, central.color, "{name}: colours differ");
        assert!(is_proper_coloring(&tree.parent, &coloring.color), "{name}");
        assert!(coloring.color.iter().all(|&c| c < 3), "{name}");
        // O(log* n) + O(1): the fixed schedule plus seven protocol rounds.
        assert_eq!(cv_meter.rounds(), cv_schedule_len() + 7, "{name}");
        assert!(cv_meter.max_words_on_edge() <= cv_meter.capacity_words());
    }
}

#[test]
fn voronoi_port_matches_centralized_on_all_families() {
    for (name, g) in families() {
        // Centers from the region-growing baseline's ball seeds.
        let rg = region_growing_ldd(&g, 0.3);
        let centers: Vec<usize> = rg
            .clusters()
            .map(|members| members.iter().copied().min().unwrap())
            .collect();
        let central = voronoi_ldd(&g, &centers);
        let (dist, meter) = run_voronoi_ldd(&g, &centers, &executor()).unwrap();
        assert_eq!(dist, central, "{name}: assignments differ");
        assert!(dist.all_clusters_connected(&g), "{name}");
        // The wave reaches every vertex within eccentricity-many rounds.
        assert!(meter.rounds() <= g.n() as u64 + 1, "{name}");
        assert!(meter.max_words_on_edge() <= meter.capacity_words());
    }
}

#[test]
fn executions_are_deterministic_across_thread_counts() {
    let g = generators::triangulated_grid(12, 12);
    let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
    let mut meter = RoundMeter::new();
    let tree = primitives::build_bfs_tree(&g, None, 0, &mut meter);
    let mut reference = None;
    for threads in [1, 2, 8] {
        let exec = Executor::new(ExecutorConfig::with_threads(threads));
        let (coloring, cv_meter) = run_cole_vishkin(&g, &tree.parent, &id, &exec).unwrap();
        let (bfs, bfs_meter) = run_bfs(&g, 5, &exec).unwrap();
        let snapshot = (
            coloring.color,
            cv_meter.rounds(),
            cv_meter.messages(),
            bfs.parent,
            bfs_meter.rounds(),
            bfs_meter.messages(),
        );
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => assert_eq!(r, &snapshot, "thread count {threads} changed the result"),
        }
    }
}

#[test]
fn cluster_scoped_bfs_matches_per_cluster_centralized_runs() {
    let g = generators::triangulated_grid(10, 10);
    let clustering = chop_ldd(&g, 0.3, 3);
    let clusters: Vec<Vec<usize>> = clustering.clusters().map(|c| c.to_vec()).collect();
    let run = run_on_clusters(
        &g,
        &clusters,
        |_idx, _sub, _members| BfsProgram { root: 0 },
        &ExecutorConfig::default(),
    )
    .unwrap();

    // Per-cluster differential check plus manual merge_parallel accounting.
    let mut expected = RoundMeter::new();
    let mut cluster_meters = Vec::new();
    for (c, members) in clusters.iter().enumerate() {
        let (sub, _) = g.induced_subgraph(members);
        let mut meter = RoundMeter::new();
        let central = primitives::build_bfs_tree(&sub, None, 0, &mut meter);
        let states = &run.cluster_states[c];
        for (i, state) in states.iter().enumerate() {
            assert_eq!(
                state.depth.map_or(usize::MAX, |d| d as usize),
                central.depth[i],
                "cluster {c}, vertex {i}"
            );
        }
        let mut cluster_meter = RoundMeter::new();
        cluster_meter.charge_rounds(central.height as u64 + 1);
        cluster_meters.push(cluster_meter);
    }
    expected.merge_parallel(cluster_meters.iter());
    assert_eq!(run.meter.rounds(), expected.rounds());
    assert_eq!(run.max_rounds, expected.rounds());

    // Scatter back to original vertex ids: every vertex got a depth.
    let depths = run.scatter(g.n(), usize::MAX, |s| {
        s.depth.map_or(usize::MAX, |d| d as usize)
    });
    assert!(depths.iter().all(|&d| d != usize::MAX));
}

/// A program that performs exactly the sends it is told to and halts.
struct ScriptedSender {
    /// `(src, dst, copies)` triples, all executed in round 1.
    sends: Vec<(usize, usize, usize)>,
}

impl NodeProgram for ScriptedSender {
    type State = ();
    type Msg = u64;

    fn init(&self, _ctx: &NodeCtx) {}

    fn round(
        &self,
        ctx: &NodeCtx,
        _state: &mut (),
        _inbox: &[Envelope<u64>],
        out: &mut Outbox<'_, u64>,
    ) {
        for &(src, dst, copies) in &self.sends {
            if src == ctx.id {
                for _ in 0..copies {
                    out.send(dst, 1);
                }
            }
        }
    }

    fn halted(&self, ctx: &NodeCtx, _state: &()) -> bool {
        ctx.round >= 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The executor accepts a scripted round exactly when the meter accepts
    /// the same message multiset — it can never smuggle a round past the
    /// CONGEST model.
    #[test]
    fn executor_never_accepts_a_round_the_meter_would_reject(
        n in 3usize..24,
        extra in 0usize..30,
        seed in 0u64..500,
        src in 0usize..24,
        dst in 0usize..24,
        copies in 1usize..4,
    ) {
        let g = generators::random_gnm(n, n + extra, seed);
        let src = src % n;
        let dst = dst % n;
        let sends = vec![(src, dst, copies)];
        let msgs: Vec<Message> = (0..copies).map(|_| Message::word(src, dst)).collect();
        let verdict = RoundMeter::new().check_round(&g, &msgs);
        let result = executor().run(&g, &ScriptedSender { sends });
        prop_assert_eq!(verdict.is_ok(), result.is_ok(),
            "meter verdict {:?} vs executor {:?}", verdict, result.as_ref().map(|_| ()));
        if let Err(RuntimeError::Model(e)) = result {
            let expected = verdict.unwrap_err();
            prop_assert_eq!(e, expected);
        }
    }

    /// Legal scripted rounds execute with exactly the scripted message count
    /// and one round on the meter.
    #[test]
    fn legal_rounds_are_committed_with_exact_accounting(
        n in 4usize..30,
        seed in 0u64..500,
    ) {
        let g = generators::random_gnm(n, 2 * n, seed);
        // Script one legal one-word send per edge endpoint pair (both
        // directions), which is always within the default capacity.
        let sends: Vec<(usize, usize, usize)> = g
            .edges()
            .flat_map(|(u, v)| [(u, v, 1), (v, u, 1)])
            .collect();
        let expected = sends.len() as u64;
        let run = executor().run(&g, &ScriptedSender { sends }).unwrap();
        prop_assert_eq!(run.rounds, 1);
        prop_assert_eq!(run.messages, expected);
        prop_assert!(run.meter.max_words_on_edge() <= run.meter.capacity_words());
    }
}

#[test]
fn self_send_is_rejected_as_non_edge() {
    let g = generators::path(3);
    let err = executor()
        .run(
            &g,
            &ScriptedSender {
                sends: vec![(1, 1, 1)],
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        RuntimeError::Model(CongestError::NotAnEdge { src: 1, dst: 1 })
    );
}
