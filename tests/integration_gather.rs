//! Cross-crate integration tests for the executed §2 gather programs: the
//! three strategies run as real `NodeProgram`s on both engines and are
//! differentially validated against the metered implementations.

use mfd_congest::RoundMeter;
use mfd_graph::{generators, Graph};
use mfd_routing::gather::{gather_to_leader, tree_gather, GatherStrategy};
use mfd_routing::load_balance::{LoadBalanceParams, LoadBalancePlan};
use mfd_routing::programs::{
    execute_gather, GatherProgram, LoadBalanceProgram, TreeGatherProgram, WalkScheduleProgram,
};
use mfd_routing::walks::{plan_walk_schedule, WalkParams, WalkPlan};
use mfd_runtime::ExecutorConfig;
use mfd_sim::{run_both, LatencyModel, SimConfig, Simulator};
use proptest::prelude::*;

/// The acceptance families every executed strategy is validated on.
fn acceptance_families() -> Vec<(&'static str, Graph)> {
    vec![
        ("tri-grid-8x8", generators::triangulated_grid(8, 8)),
        ("wheel-64", generators::wheel(64)),
        ("hypercube-6", generators::hypercube(6)),
    ]
}

fn max_degree_vertex(g: &Graph) -> usize {
    (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap()
}

/// Walk parameters with tighter caps than the defaults: the differential
/// contract is identical (metered and executed share the plan), but the
/// leader-local seed search stays cheap enough for debug-mode CI. Shared
/// with the CI-gated report sections via `mfd_bench`.
fn test_walk_params() -> WalkParams {
    mfd_bench::acceptance_walk_params()
}

#[test]
fn tree_program_matches_both_engines_bit_for_bit() {
    for (name, g) in acceptance_families() {
        let program = TreeGatherProgram::new(&g, max_degree_vertex(&g));
        let (sync, sim) = run_both(
            &g,
            &program,
            &ExecutorConfig::default(),
            LatencyModel::Fixed(1),
        )
        .unwrap();
        assert_eq!(sync.states, sim.states, "{name}");
        assert_eq!(sync.rounds, sim.rounds, "{name}");
        assert_eq!(sync.messages, sim.messages, "{name}");
        assert_eq!(
            sync.meter.max_words_on_edge(),
            sim.meter.max_words_on_edge(),
            "{name}"
        );
    }
}

#[test]
fn load_balance_program_matches_both_engines_bit_for_bit() {
    for (name, g) in acceptance_families() {
        let leader = max_degree_vertex(&g);
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        let program = LoadBalanceProgram::new(&g, leader, 0.1, &plan);
        let (sync, sim) = run_both(
            &g,
            &program,
            &ExecutorConfig::default(),
            LatencyModel::Fixed(1),
        )
        .unwrap();
        assert_eq!(sync.states, sim.states, "{name}");
        assert_eq!(sync.rounds, sim.rounds, "{name}");
        assert_eq!(sync.messages, sim.messages, "{name}");
    }
}

#[test]
fn walk_program_matches_both_engines_bit_for_bit() {
    for (name, g) in acceptance_families() {
        let leader = max_degree_vertex(&g);
        let plan = plan_walk_schedule(&g, leader, 0.2, &test_walk_params());
        let program = WalkScheduleProgram::new(&g, &plan);
        let (sync, sim) = run_both(
            &g,
            &program,
            &ExecutorConfig::default(),
            LatencyModel::Fixed(1),
        )
        .unwrap();
        assert_eq!(sync.states, sim.states, "{name}");
        assert_eq!(sync.rounds, sim.rounds, "{name}");
        assert_eq!(sync.messages, sim.messages, "{name}");
    }
}

/// Latency changes completion *times*, never the synchronous round structure:
/// the α-synchronizer preserves each program's rounds and messages under
/// non-trivial delay distributions.
#[test]
fn gather_rounds_are_latency_invariant() {
    let g = generators::wheel(48);
    let leader = max_degree_vertex(&g);
    let program = TreeGatherProgram::new(&g, leader);
    let cfg = ExecutorConfig::default();
    let sync = mfd_runtime::Executor::new(cfg.clone())
        .run(&g, &program)
        .unwrap();
    for latency in [
        LatencyModel::Fixed(3),
        LatencyModel::Uniform { lo: 1, hi: 7 },
        LatencyModel::HeavyTail {
            min: 1,
            alpha: 1.3,
            cap: 50,
        },
    ] {
        let sim = Simulator::new(SimConfig::matching(&cfg, latency))
            .run(&g, &program)
            .unwrap();
        assert_eq!(sim.rounds, sync.rounds);
        assert_eq!(sim.messages, sync.messages);
        assert!(sim.makespan >= sim.rounds - 1);
        let report = program.executed_report(&sim.states, sim.rounds, sim.messages);
        assert!((report.delivered_fraction - 1.0).abs() < 1e-12);
    }
}

/// The acceptance criterion of the executed layer: on every acceptance
/// family, every strategy's executed round count sits within the metered
/// implementation's charged bound, and the executed delivery meets the
/// metered guarantee.
#[test]
fn executed_rounds_within_charged_bound_on_acceptance_families() {
    let f = 0.1;
    for (name, g) in acceptance_families() {
        let leader = max_degree_vertex(&g);
        let cfg = ExecutorConfig::default();

        // Tree pipeline: full delivery, identical per-vertex counts.
        let mut meter = RoundMeter::new();
        let charged = tree_gather(&g, leader, &mut meter);
        let program = TreeGatherProgram::new(&g, leader);
        let (executed, _) = execute_gather(&g, &program, &cfg).unwrap();
        assert!(
            executed.rounds <= charged.rounds,
            "tree on {name}: executed {} > charged {}",
            executed.rounds,
            charged.rounds
        );
        assert_eq!(executed.per_vertex_delivered, charged.per_vertex_delivered);

        // Load balance: same plan, executed delivery within the failure
        // budget whenever the metered run met it.
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        let mut meter = RoundMeter::new();
        let charged = mfd_routing::load_balance::load_balance_gather_with_plan(
            &g, leader, f, &plan, &mut meter,
        );
        let program = LoadBalanceProgram::new(&g, leader, f, &plan);
        let (executed, _) = execute_gather(&g, &program, &cfg).unwrap();
        assert!(
            executed.rounds <= charged.rounds,
            "load-balance on {name}: executed {} > charged {}",
            executed.rounds,
            charged.rounds
        );
        if charged.delivered_fraction >= 1.0 - f {
            assert!(
                executed.delivered_fraction >= 1.0 - f,
                "load-balance on {name}: executed delivered {}",
                executed.delivered_fraction
            );
        }

        // Walk schedule: the executed delivery equals the planned good set.
        let params = test_walk_params();
        let plan = plan_walk_schedule(&g, leader, 0.2, &params);
        let mut meter = RoundMeter::new();
        let charged = mfd_routing::walks::execute_walk_gather(&g, &plan, &params, &mut meter);
        let program = WalkScheduleProgram::new(&g, &plan);
        let (executed, _) = execute_gather(&g, &program, &cfg).unwrap();
        assert!(
            executed.rounds <= charged.rounds,
            "walk on {name}: executed {} > charged {}",
            executed.rounds,
            charged.rounds
        );
        assert_eq!(executed.per_vertex_delivered, charged.per_vertex_delivered);
    }
}

/// The planners are pure: same input, same plan — including the memoized
/// split and spectral estimates.
#[test]
fn planners_are_pure() {
    let g = generators::random_apollonian(48, 7);
    let lb_params = LoadBalanceParams::default();
    let a = LoadBalancePlan::new(&g, &lb_params);
    let b = LoadBalancePlan::new(&g, &lb_params);
    assert_eq!(a, b);

    let wp = test_walk_params();
    let p1: WalkPlan = plan_walk_schedule(&g, 0, 0.15, &wp);
    let p2: WalkPlan = plan_walk_schedule(&g, 0, 0.15, &wp);
    assert_eq!(p1.schedule, p2.schedule);
    assert_eq!(p1.split, p2.split);
    assert_eq!(p1.good, p2.good);
    assert_eq!(p1.seeds_tried, p2.seeds_tried);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random connected cluster graphs and seeds: the executed tree gather
    /// always delivers everything the metered gather reports, bit-for-bit
    /// across engines.
    #[test]
    fn executed_tree_gather_delivers_on_random_clusters(n in 8usize..40, seed in 0u64..500) {
        let g = generators::random_apollonian(n, seed);
        let leader = max_degree_vertex(&g);
        let mut meter = RoundMeter::new();
        let charged = gather_to_leader(&g, leader, 0.1, &GatherStrategy::TreePipeline, &mut meter);
        let program = TreeGatherProgram::new(&g, leader);
        let (sync, sim) = run_both(
            &g,
            &program,
            &ExecutorConfig::default(),
            LatencyModel::Fixed(1),
        )
        .unwrap();
        prop_assert_eq!(sync.states, sim.states);
        prop_assert_eq!(sync.rounds, sim.rounds);
        let executed = program.executed_report(&sim.states, sim.rounds, sim.messages);
        prop_assert!(executed.rounds <= charged.rounds,
            "executed {} > charged {}", executed.rounds, charged.rounds);
        prop_assert!((executed.delivered_fraction - 1.0).abs() < 1e-12);
        prop_assert_eq!(executed.per_vertex_delivered, charged.per_vertex_delivered);
    }

    /// Random clusters: executed load-balance delivery meets the metered
    /// report's guarantee (the failure budget whenever the metered run met
    /// it), and `Fixed(1)` simulation is identical to the executor.
    #[test]
    fn executed_load_balance_meets_metered_guarantee(n in 8usize..32, seed in 0u64..500) {
        let g = generators::random_apollonian(n, seed);
        let leader = max_degree_vertex(&g);
        let f = 0.2;
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        let mut meter = RoundMeter::new();
        let charged = mfd_routing::load_balance::load_balance_gather_with_plan(
            &g, leader, f, &plan, &mut meter,
        );
        let program = LoadBalanceProgram::new(&g, leader, f, &plan);
        let (sync, sim) = run_both(
            &g,
            &program,
            &ExecutorConfig::default(),
            LatencyModel::Fixed(1),
        )
        .unwrap();
        prop_assert_eq!(sync.states, sim.states);
        prop_assert_eq!(sync.rounds, sim.rounds);
        prop_assert_eq!(sync.messages, sim.messages);
        let executed = program.executed_report(&sync.states, sync.rounds, sync.messages);
        let guarantee = charged.delivered_fraction.min(1.0 - f);
        prop_assert!(
            executed.delivered_fraction >= guarantee - 1e-12,
            "executed delivered {} < metered guarantee {}",
            executed.delivered_fraction,
            guarantee
        );
    }

    /// Random clusters: the executed walk schedule delivers exactly the
    /// planned good set on both engines.
    #[test]
    fn executed_walk_schedule_delivers_planned_set(n in 8usize..32, seed in 0u64..500) {
        let g = generators::random_apollonian(n, seed);
        let leader = max_degree_vertex(&g);
        let params = test_walk_params();
        let plan = plan_walk_schedule(&g, leader, 0.25, &params);
        let mut meter = RoundMeter::new();
        let charged = mfd_routing::walks::execute_walk_gather(&g, &plan, &params, &mut meter);
        let program = WalkScheduleProgram::new(&g, &plan);
        let (sync, sim) = run_both(
            &g,
            &program,
            &ExecutorConfig::default(),
            LatencyModel::Fixed(1),
        )
        .unwrap();
        prop_assert_eq!(sync.states, sim.states);
        prop_assert_eq!(sync.rounds, sim.rounds);
        let executed = program.executed_report(&sync.states, sync.rounds, sync.messages);
        prop_assert_eq!(executed.per_vertex_delivered, charged.per_vertex_delivered);
        prop_assert!(executed.rounds <= charged.rounds);
    }
}
