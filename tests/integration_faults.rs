//! Repo-level integration tests for the fault-injection layer:
//!
//! * **Zero-fault identity** — every `FaultModel` with all rates at zero is
//!   bit-for-bit the plain simulation, across programs, graphs, latency
//!   models and seeds (property-tested); and `Reliable<P>` over a loss-free
//!   network drives its inner program to bit-for-bit the plain final states.
//! * **Recovery** — at loss rates up to 0.2 on the acceptance families
//!   (tri-grid-8x8, wheel-64, hypercube-6), `Reliable<P>` restores the
//!   *exact* loss-free delivered set for all three gather programs, while
//!   the raw runs demonstrably degrade or starve.
//! * **Determinism** — faulty runs (losses, bursts, crashes and all) are
//!   pure functions of `(graph, program, config, model)` and independent of
//!   event-queue tie-breaking.
//! * **Crash robustness** — crash-stop the gather leader and the survivors
//!   re-elect the maximum surviving id, then re-gather completely.

use mfd_congest::{primitives, RoundMeter};
use mfd_core::programs::{BfsProgram, ColeVishkinProgram};
use mfd_faults::{crash_and_regather, FaultModel, Reliable};
use mfd_graph::properties::splitmix64;
use mfd_graph::{generators, Graph};
use mfd_routing::load_balance::{LoadBalanceParams, LoadBalancePlan};
use mfd_routing::programs::{
    GatherProgram, LoadBalanceProgram, TreeGatherProgram, WalkScheduleProgram,
};
use mfd_routing::walks::plan_walk_schedule;
use mfd_runtime::{ExecutorConfig, NodeProgram};
use mfd_sim::{FaultOutcome, LatencyModel, NoFaults, SimConfig, Simulator, TieBreak};
use proptest::prelude::*;

/// A random connected graph: a uniform random tree plus random chords.
fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let tree = generators::random_tree(n, seed);
    generators::with_random_chords(&tree, extra, splitmix64(seed))
}

/// The zero-rate variants of every fault model shape.
fn zero_rate_models() -> Vec<FaultModel> {
    vec![
        FaultModel::none(),
        FaultModel::iid_loss(0.0),
        FaultModel::burst_loss(0.08, 0.3, 0.0, 0.0),
        FaultModel::chaos(0.0, 0.0, 0.0, 4),
    ]
}

/// Asserts that simulating `program` under every zero-rate fault model is
/// bit-for-bit the plain simulation, for the given latency.
fn assert_zero_fault_identity<P>(g: &Graph, program: &P, config: &SimConfig)
where
    P: NodeProgram,
    P::State: PartialEq + std::fmt::Debug,
{
    let sim = Simulator::new(config.clone());
    let plain = sim.run(g, program).unwrap();
    for model in zero_rate_models() {
        let faulted = sim.run_with_faults(g, program, &model).unwrap();
        assert_eq!(faulted.outcome, FaultOutcome::Completed);
        assert!(faulted.crashed.iter().all(|&c| !c));
        assert_eq!(plain.states, faulted.run.states);
        assert_eq!(plain.rounds, faulted.run.rounds);
        assert_eq!(plain.messages, faulted.run.messages);
        assert_eq!(plain.makespan, faulted.run.makespan);
        assert_eq!(plain.completion, faulted.run.completion);
        assert_eq!(plain.stats.packets, faulted.run.stats.packets);
        assert_eq!(faulted.run.stats.lost_messages, 0);
        assert_eq!(faulted.run.stats.slipped_messages, 0);
        assert_eq!(faulted.run.stats.duplicated_messages, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero-rate fault models are invisible: BFS and Cole–Vishkin on random
    /// connected graphs, random seeds, fixed and jittery latencies.
    #[test]
    fn zero_fault_models_are_bit_for_bit_invisible(
        n in 2usize..28,
        extra in 0usize..32,
        seed in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        for latency in [LatencyModel::Fixed(1), LatencyModel::Uniform { lo: 1, hi: 4 }] {
            let config = SimConfig {
                seed: splitmix64(seed ^ 0xFA17),
                ..SimConfig::default()
            }
            .with_latency(latency);
            assert_zero_fault_identity(&g, &BfsProgram { root: 0 }, &config);
            let mut meter = RoundMeter::new();
            let forest = primitives::build_bfs_tree(&g, None, 0, &mut meter).parent.clone();
            let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
            assert_zero_fault_identity(&g, &ColeVishkinProgram::new(forest, id), &config);
        }
    }

    /// Zero-rate identity for the executed tree gather on random connected
    /// clusters, and `Reliable<TreeGather>` over a loss-free network drives
    /// the inner program to bit-for-bit the plain final states.
    #[test]
    fn zero_fault_identity_holds_for_gather_and_reliable(
        n in 2usize..20,
        extra in 0usize..16,
        seed in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        let leader = acceptance_leader(&g);
        let program = TreeGatherProgram::new(&g, leader);
        let config = SimConfig {
            seed: splitmix64(seed ^ 0x5AFE),
            ..SimConfig::default()
        };
        assert_zero_fault_identity(&g, &program, &config);

        let plain = Simulator::new(config.clone()).run(&g, &program).unwrap();
        let wrapped = Simulator::new(config)
            .run(&g, &Reliable::new(program.clone()))
            .unwrap();
        prop_assert_eq!(
            plain.states,
            Reliable::<TreeGatherProgram>::inner_states_cloned(&wrapped.states)
        );
        let stats = Reliable::<TreeGatherProgram>::stats(&wrapped.states);
        prop_assert_eq!(stats.retransmitted, 0, "loss-free run retransmitted");
        prop_assert_eq!(stats.fresh, plain.messages);
    }

    /// Faulty runs are deterministic and tie-break independent: same model,
    /// same seed, flipped event ordering — identical everything.
    #[test]
    fn faulty_runs_are_deterministic_and_tie_break_independent(
        n in 3usize..20,
        extra in 0usize..16,
        seed in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        let model = FaultModel::chaos(0.15, 0.05, 0.05, 3).with_crash(n / 2, 3);
        let base = SimConfig {
            seed: splitmix64(seed ^ 0xD1CE),
            ..SimConfig::default()
        }
        .with_latency(LatencyModel::Uniform { lo: 1, hi: 5 });
        let program = BfsProgram { root: 0 };
        let sim = Simulator::new(base.clone());
        let a = sim.run_with_faults(&g, &program, &model).unwrap();
        let b = sim.run_with_faults(&g, &program, &model).unwrap();
        let c = Simulator::new(SimConfig {
            tie_break: TieBreak::ReverseInsertion,
            ..base
        })
        .run_with_faults(&g, &program, &model)
        .unwrap();
        for other in [&b, &c] {
            prop_assert_eq!(&a.crashed, &other.crashed);
            prop_assert_eq!(a.outcome, other.outcome);
            prop_assert_eq!(a.run.rounds, other.run.rounds);
            prop_assert_eq!(a.run.messages, other.run.messages);
            prop_assert_eq!(a.run.makespan, other.run.makespan);
            prop_assert_eq!(a.run.stats.lost_messages, other.run.stats.lost_messages);
            prop_assert_eq!(a.run.stats.slipped_messages, other.run.stats.slipped_messages);
            prop_assert!(a.run.states.iter().zip(&other.run.states).all(|(x, y)| {
                x.depth == y.depth && x.parent == y.parent
            }));
        }
    }
}

// The acceptance families, leaders and walk parameters are the shared
// `mfd_bench::acceptance_*` definitions — the very configuration the
// CI-gated report sections measure, so test claims and benchmarks cannot
// drift apart.
use mfd_bench::{acceptance_families, acceptance_leader, acceptance_walk_params};

#[test]
fn zero_fault_identity_holds_for_all_gather_programs_on_acceptance_families() {
    let walk_params = acceptance_walk_params();
    for (name, g) in acceptance_families() {
        let leader = acceptance_leader(&g);
        let config = SimConfig::default();
        assert_zero_fault_identity(&g, &TreeGatherProgram::new(&g, leader), &config);
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        assert_zero_fault_identity(
            &g,
            &LoadBalanceProgram::new(&g, leader, 0.1, &plan),
            &config,
        );
        let walk_plan = plan_walk_schedule(&g, leader, 0.2, &walk_params);
        assert_zero_fault_identity(&g, &WalkScheduleProgram::new(&g, &walk_plan), &config);
        println!("zero-fault identity holds on {name}");
    }
}

/// Runs `program` raw and behind the adapter at the given loss rate,
/// asserting the adapter restores exactly the loss-free delivered set.
fn assert_recovery<P>(name: &str, g: &Graph, program: &P, loss: f64)
where
    P: GatherProgram + Clone,
    P::State: Clone + PartialEq + std::fmt::Debug,
{
    let config = SimConfig::default();
    let sim = Simulator::new(config);
    let clean = sim.run(g, program).unwrap();
    let model = FaultModel::iid_loss(loss);

    let wrapped = sim
        .run_with_faults(g, &Reliable::new(program.clone()), &model)
        .unwrap();
    assert_eq!(
        wrapped.outcome,
        FaultOutcome::Completed,
        "{name}: adapter starved at loss {loss}"
    );
    // The inner trajectory is *bit-for-bit* the loss-free one — delivered
    // sets, counters, private protocol state, everything.
    let inner = Reliable::<P>::inner_states_cloned(&wrapped.run.states);
    assert_eq!(clean.states, inner, "{name} at loss {loss}");
    assert_eq!(
        program.per_vertex_delivered(&clean.states),
        program.per_vertex_delivered(&inner),
        "{name}: delivered sets differ"
    );
    assert_eq!(
        program.leader_received(&clean.states),
        program.leader_received(&inner)
    );
    let stats = Reliable::<P>::stats(&wrapped.run.states);
    assert!(
        stats.retransmitted > 0,
        "{name}: {loss} loss caused no retransmissions"
    );
}

#[test]
fn reliable_adapter_restores_tree_gather_at_loss_up_to_020() {
    for (name, g) in acceptance_families() {
        let leader = acceptance_leader(&g);
        let program = TreeGatherProgram::new(&g, leader);
        for loss in [0.1, 0.2] {
            assert_recovery(name, &g, &program, loss);
        }
        // And the raw run demonstrably degrades: fewer leader receipts, or
        // an outright starved protocol.
        let raw = Simulator::new(SimConfig::default())
            .run_with_faults(&g, &program, &FaultModel::iid_loss(0.2))
            .unwrap();
        let received = program.leader_received(&raw.run.states);
        assert!(
            raw.outcome.is_wedged() || received < program.total_messages() as u64,
            "{name}: raw run unaffected by 20% loss"
        );
    }
}

#[test]
fn reliable_adapter_restores_walk_gather_at_loss_up_to_020() {
    let walk_params = acceptance_walk_params();
    for (name, g) in acceptance_families() {
        let leader = acceptance_leader(&g);
        let plan = plan_walk_schedule(&g, leader, 0.2, &walk_params);
        let program = WalkScheduleProgram::new(&g, &plan);
        for loss in [0.1, 0.2] {
            assert_recovery(name, &g, &program, loss);
        }
    }
}

#[test]
fn reliable_adapter_restores_load_balance_at_loss_up_to_020() {
    // The balancer is the chattiest program (tens of thousands of frames);
    // the full family × rate matrix lives in the release-mode report section
    // CI gates — here the wheel runs both rates and the others one.
    for (name, g, losses) in [
        ("wheel-64", generators::wheel(64), &[0.1, 0.2][..]),
        ("hypercube-6", generators::hypercube(6), &[0.2][..]),
        (
            "tri-grid-8x8",
            generators::triangulated_grid(8, 8),
            &[0.05][..],
        ),
    ] {
        let leader = acceptance_leader(&g);
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        let program = LoadBalanceProgram::new(&g, leader, 0.1, &plan);
        for &loss in losses {
            assert_recovery(name, &g, &program, loss);
        }
    }
}

#[test]
fn crashing_the_gather_leader_reelects_and_regathers_on_every_family() {
    for (name, g) in acceptance_families() {
        let leader = acceptance_leader(&g);
        let out = crash_and_regather(
            &g,
            leader,
            5,
            2,
            &SimConfig::default(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(out.crashed, vec![leader], "{name}");
        assert!(out.agreement, "{name}: survivors disagree");
        let max_survivor = *out.survivors.last().unwrap();
        assert_eq!(out.elected, max_survivor, "{name}");
        // Removing one vertex of these families leaves the survivors
        // connected, so the re-gather is complete.
        assert!(
            (out.regather.delivered_fraction - 1.0).abs() < 1e-12,
            "{name}: re-gather delivered {}",
            out.regather.delivered_fraction
        );
    }
}

#[test]
fn run_with_no_faults_is_the_plain_simulation_for_reliable_wrappers_too() {
    // Belt and braces for the adapter's own determinism: NoFaults through
    // run_with_faults equals run() wholesale, wrapper state included.
    let g = generators::triangulated_grid(4, 6);
    let program = Reliable::new(TreeGatherProgram::new(&g, 0));
    let sim = Simulator::new(SimConfig::default());
    let plain = sim.run(&g, &program).unwrap();
    let faulted = sim.run_with_faults(&g, &program, &NoFaults).unwrap();
    assert_eq!(faulted.outcome, FaultOutcome::Completed);
    assert_eq!(plain.rounds, faulted.run.rounds);
    assert_eq!(plain.messages, faulted.run.messages);
    assert_eq!(plain.makespan, faulted.run.makespan);
    assert_eq!(
        Reliable::<TreeGatherProgram>::stats(&plain.states),
        Reliable::<TreeGatherProgram>::stats(&faulted.run.states)
    );
}
