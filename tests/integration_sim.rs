//! Cross-engine integration tests for the `mfd-sim` asynchronous simulator:
//! property tests that unit-latency simulation is indistinguishable from
//! synchronous execution on random graphs and seeds, that simulations are
//! deterministic and independent of event-queue tie-breaking under every
//! latency model, and that the synchronizer handles disconnected inputs.

use mfd_congest::{primitives, RoundMeter};
use mfd_core::programs::{BfsProgram, ColeVishkinProgram, VoronoiLddProgram};
use mfd_graph::properties::splitmix64;
use mfd_graph::{generators, Graph, WeightedGraph};
use mfd_runtime::ExecutorConfig;
use mfd_sim::{run_both, LatencyModel, SimConfig, Simulator, TieBreak};
use proptest::prelude::*;

/// A random connected graph: a uniform random tree plus random chords.
fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let tree = generators::random_tree(n, seed);
    generators::with_random_chords(&tree, extra, splitmix64(seed))
}

/// BFS spanning-forest parent pointers, for Cole–Vishkin instances.
fn spanning_forest(g: &Graph) -> Vec<usize> {
    let mut meter = RoundMeter::new();
    primitives::build_bfs_tree(g, None, 0, &mut meter)
        .parent
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With `Fixed(1)` latency the simulator matches the synchronous
    /// executor state-for-state (public outputs), round-for-round and
    /// message-for-message, for all three ported programs, on random
    /// connected graphs across random sizes, densities and seeds.
    #[test]
    fn unit_latency_simulation_equals_synchronous_execution(
        n in 2usize..32,
        extra in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        let cfg = ExecutorConfig {
            seed: splitmix64(seed ^ 0xC0FFEE),
            ..ExecutorConfig::default()
        };

        let (sync, sim) =
            run_both(&g, &BfsProgram { root: 0 }, &cfg, LatencyModel::Fixed(1)).unwrap();
        prop_assert!(sync
            .states
            .iter()
            .zip(&sim.states)
            .all(|(a, b)| a.depth == b.depth && a.parent == b.parent));
        prop_assert_eq!(sync.rounds, sim.rounds);
        prop_assert_eq!(sync.messages, sim.messages);
        prop_assert_eq!(sync.meter.max_words_on_edge(), sim.meter.max_words_on_edge());

        let centers = [0, n / 2];
        let voronoi = VoronoiLddProgram::new(g.n(), &centers);
        let (sync, sim) = run_both(&g, &voronoi, &cfg, LatencyModel::Fixed(1)).unwrap();
        prop_assert!(sync
            .states
            .iter()
            .zip(&sim.states)
            .all(|(a, b)| a.center == b.center && a.dist == b.dist));
        prop_assert_eq!(sync.rounds, sim.rounds);
        prop_assert_eq!(sync.messages, sim.messages);

        let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
        let cv = ColeVishkinProgram::new(spanning_forest(&g), id);
        let (sync, sim) = run_both(&g, &cv, &cfg, LatencyModel::Fixed(1)).unwrap();
        prop_assert!(sync
            .states
            .iter()
            .zip(&sim.states)
            .all(|(a, b)| a.color == b.color && a.old_color == b.old_color));
        prop_assert_eq!(sync.rounds, sim.rounds);
        prop_assert_eq!(sync.messages, sim.messages);
    }

    /// Simulator results are a pure function of `(graph, program, config)`:
    /// re-running is bit-identical, and flipping the event-queue tie-break
    /// order changes nothing — states, times, congestion peaks, packet
    /// counts all agree.
    #[test]
    fn simulation_is_deterministic_and_tie_break_independent(
        n in 2usize..24,
        extra in 0usize..24,
        seed in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        for latency in [
            LatencyModel::Fixed(2),
            LatencyModel::Uniform { lo: 1, hi: 7 },
            LatencyModel::HeavyTail { min: 1, alpha: 1.4, cap: 32 },
        ] {
            let base = SimConfig::default().with_latency(latency);
            let a = Simulator::new(base.clone())
                .run(&g, &BfsProgram { root: 0 })
                .unwrap();
            let b = Simulator::new(base.clone())
                .run(&g, &BfsProgram { root: 0 })
                .unwrap();
            let c = Simulator::new(SimConfig { tie_break: TieBreak::ReverseInsertion, ..base })
                .run(&g, &BfsProgram { root: 0 })
                .unwrap();
            for other in [&b, &c] {
                prop_assert!(a
                    .states
                    .iter()
                    .zip(&other.states)
                    .all(|(x, y)| x.depth == y.depth && x.parent == y.parent));
                prop_assert_eq!(a.makespan, other.makespan);
                prop_assert_eq!(&a.completion, &other.completion);
                prop_assert_eq!(a.rounds, other.rounds);
                prop_assert_eq!(a.messages, other.messages);
                prop_assert_eq!(a.stats.packets, other.stats.packets);
                prop_assert_eq!(a.stats.peak_in_flight, other.stats.peak_in_flight);
                prop_assert_eq!(&a.stats.edge_in_flight_peak, &other.stats.edge_in_flight_peak);
            }
            // Rounds are a property of the algorithm, not the network;
            // the virtual clock can only run at least as long.
            prop_assert!(a.makespan + 1 >= a.rounds);
        }
    }
}

/// On a disconnected graph the two engines end differently — the frontier
/// executor breaks at the quiescence fixpoint, the simulator runs the
/// unreachability timeout — but the public outputs must agree exactly.
#[test]
fn disconnected_graphs_agree_on_public_outputs() {
    let g = generators::path(5).disjoint_union(&generators::cycle(4));
    let (sync, sim) = run_both(
        &g,
        &BfsProgram { root: 0 },
        &ExecutorConfig::default(),
        LatencyModel::Fixed(1),
    )
    .unwrap();
    assert!(sync
        .states
        .iter()
        .zip(&sim.states)
        .all(|(a, b)| a.depth == b.depth && a.parent == b.parent));
    assert!(sync.states[5..].iter().all(|s| s.depth.is_none()));
    // The executor stops as soon as the reachable component is done and the
    // rest of the graph is quiescent; the simulator's unreached vertices run
    // the full `round > n` timeout before halting.
    assert!(sync.rounds <= sim.rounds);
}

/// Per-edge latencies drawn from a weighted graph: the heavier the link on
/// the wave's path, the later the completion, while results stay identical.
#[test]
fn per_edge_latency_orders_completions_along_the_path() {
    let g = generators::path(4);
    let mut weights = WeightedGraph::new(4);
    weights.add_weight(0, 1, 1);
    weights.add_weight(1, 2, 8);
    weights.add_weight(2, 3, 2);
    let sim = Simulator::new(SimConfig::default().with_latency(LatencyModel::PerEdge(weights)));
    let run = sim.run(&g, &BfsProgram { root: 0 }).unwrap();
    assert_eq!(
        run.states.iter().map(|s| s.depth).collect::<Vec<_>>(),
        vec![Some(0), Some(1), Some(2), Some(3)]
    );
    // The wave crosses the 8-tick middle edge exactly once.
    assert!(run.completion[2] > run.completion[1]);
    assert!(run.completion[3] > run.completion[2]);
}
