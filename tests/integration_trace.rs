//! Cross-crate integration tests for the `mfd-trace` observability layer:
//! property tests that observed runs (recording, metrics and digest sinks)
//! are bit-identical to untraced runs on both engines, that the per-round
//! digest chains agree across engines at unit latency, that the divergence
//! search pinpoints a seeded injected divergence to the exact round and
//! vertex, and that the reliable-delivery adapter's drained trace reconciles
//! with its own aggregate statistics.

use mfd_bench::trace::{executor_chain, sim_chain, DivergenceProbe};
use mfd_bench::{acceptance_families, acceptance_leader};
use mfd_congest::{primitives, RoundMeter};
use mfd_core::programs::{BfsProgram, ColeVishkinProgram, VoronoiLddProgram};
use mfd_faults::{FaultModel, Reliable};
use mfd_graph::properties::splitmix64;
use mfd_graph::{generators, Graph};
use mfd_routing::load_balance::{LoadBalanceParams, LoadBalancePlan};
use mfd_routing::programs::{LoadBalanceProgram, TreeGatherProgram};
use mfd_runtime::{Executor, ExecutorConfig};
use mfd_sim::{LatencyModel, SimConfig, Simulator};
use mfd_trace::{first_divergence, DigestSink, Event, MetricsSink, NullSink, RecordingSink, Tee};
use proptest::prelude::*;

/// A random connected graph: a uniform random tree plus random chords.
fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let tree = generators::random_tree(n, seed);
    generators::with_random_chords(&tree, extra, splitmix64(seed))
}

/// BFS spanning-forest parent pointers, for Cole–Vishkin instances.
fn spanning_forest(g: &Graph) -> Vec<usize> {
    let mut meter = RoundMeter::new();
    primitives::build_bfs_tree(g, None, 0, &mut meter)
        .parent
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Observation never perturbs the run: on random connected graphs, the
    /// untraced executor and simulator runs of BFS and Cole–Vishkin are
    /// bit-identical (states, rounds, messages, congestion peak) to the
    /// same runs observed through a recording sink with digests on and
    /// through a `Tee(MetricsSink, DigestSink)` stack — the heaviest
    /// instrumentation the layer offers.
    #[test]
    fn observed_runs_are_bit_identical_to_untraced_runs(
        n in 2usize..24,
        extra in 0usize..24,
        seed in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        let cfg = ExecutorConfig {
            seed: splitmix64(seed ^ 0xC0FFEE),
            ..ExecutorConfig::default()
        };
        let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
        let cv = ColeVishkinProgram::new(spanning_forest(&g), id);
        let bfs = BfsProgram { root: 0 };

        macro_rules! check {
            ($program:expr) => {{
                let exec = Executor::new(cfg.clone());
                let plain = exec.run(&g, $program).unwrap();
                let mut rec = RecordingSink::with_digests();
                let recorded = exec.run_traced(&g, $program, &mut rec).unwrap();
                let mut stack = Tee::new(MetricsSink::new(), DigestSink::new());
                let stacked = exec.run_traced(&g, $program, &mut stack).unwrap();
                prop_assert_eq!(&plain.states, &recorded.states);
                prop_assert_eq!(&plain.states, &stacked.states);
                prop_assert_eq!(plain.rounds, recorded.rounds);
                prop_assert_eq!(plain.messages, recorded.messages);
                prop_assert_eq!(
                    plain.meter.max_words_on_edge(),
                    recorded.meter.max_words_on_edge()
                );
                // The recorder saw every vertex step the engine charged for.
                prop_assert!(!rec.of_kind("round_close").is_empty());
                prop_assert!(!rec.digest_log.is_empty());

                let sim = Simulator::new(SimConfig::matching(&cfg, LatencyModel::Fixed(1)));
                let splain = sim.run(&g, $program).unwrap();
                let mut srec = RecordingSink::with_digests();
                let srecorded = sim.run_traced(&g, $program, &mut srec).unwrap();
                prop_assert_eq!(&splain.states, &srecorded.states);
                prop_assert_eq!(splain.rounds, srecorded.rounds);
                prop_assert_eq!(splain.messages, srecorded.messages);
                prop_assert_eq!(splain.makespan, srecorded.makespan);

                // And the digest chains the two engines journaled agree.
                prop_assert_eq!(stack.b.head(), {
                    let mut d = DigestSink::new();
                    sim.run_traced(&g, $program, &mut d).unwrap();
                    d.head()
                });
            }};
        }
        check!(&bfs);
        check!(&cv);
    }

    /// The divergence hunter is exact: corrupt one random vertex at one
    /// random round and `first_divergence` lands on precisely that round,
    /// with precisely that vertex as the culprit (the chain index equals
    /// the round because round 0 is the initial configuration).
    #[test]
    fn injected_divergence_is_pinpointed_to_round_and_vertex(
        n in 4usize..24,
        extra in 0usize..16,
        seed in 0u64..1_000_000,
        rounds in 4u64..12,
        pick in 0u64..1_000_000,
    ) {
        let g = random_connected(n, extra, seed);
        let round = 1 + pick % rounds;
        let vertex = (splitmix64(pick) % n as u64) as usize;
        let cfg = ExecutorConfig::default();

        let (clean, _) = executor_chain(&g, &DivergenceProbe::clean(rounds), &cfg).unwrap();
        let probe = DivergenceProbe::perturbed(rounds, round, vertex);
        let (bad, _) = executor_chain(&g, &probe, &cfg).unwrap();

        prop_assert_eq!(first_divergence(&clean.chain(), &bad.chain()), Some(round as usize));
        prop_assert_eq!(DigestSink::diverging_vertices(&clean, &bad, round as usize), vec![vertex]);
    }
}

/// Programs whose states cannot be hashed (floats in the gather protocol
/// state) still run through the traced entry points via [`NullSink`], and
/// the result is the untraced run, bit for bit, on both engines.
#[test]
fn null_sink_runs_gathers_bit_identical_to_untraced_runs() {
    for (name, g) in acceptance_families() {
        let leader = acceptance_leader(&g);
        let cfg = ExecutorConfig::default();
        let exec = Executor::new(cfg.clone());
        let sim = Simulator::new(SimConfig::matching(&cfg, LatencyModel::Fixed(1)));

        let tree = TreeGatherProgram::new(&g, leader);
        let plan = LoadBalancePlan::new(&g, &LoadBalanceParams::default());
        let lb = LoadBalanceProgram::new(&g, leader, 0.1, &plan);

        macro_rules! check {
            ($program:expr) => {{
                let plain = exec.run(&g, $program).unwrap();
                let nulled = exec.run_traced(&g, $program, &mut NullSink).unwrap();
                assert_eq!(plain.states, nulled.states, "{name}");
                assert_eq!(plain.rounds, nulled.rounds, "{name}");
                assert_eq!(plain.messages, nulled.messages, "{name}");
                let splain = sim.run(&g, $program).unwrap();
                let snulled = sim.run_traced(&g, $program, &mut NullSink).unwrap();
                assert_eq!(splain.states, snulled.states, "{name}");
                assert_eq!(splain.makespan, snulled.makespan, "{name}");
            }};
        }
        check!(&tree);
        check!(&lb);
    }
}

/// On the acceptance families the two engines journal the same per-round
/// digest chain for all three ported programs — the cross-engine
/// equivalence claim of `run_both`, strengthened from final public outputs
/// to the full round-by-round state history.
#[test]
fn digest_chains_agree_across_engines_on_acceptance_families() {
    for (name, g) in acceptance_families() {
        let cfg = ExecutorConfig::default();
        let id: Vec<u64> = (0..g.n() as u64).map(splitmix64).collect();
        let cv = ColeVishkinProgram::new(spanning_forest(&g), id);
        let bfs = BfsProgram { root: 0 };
        let voronoi = VoronoiLddProgram::new(g.n(), &[0, g.n() / 2]);

        macro_rules! check {
            ($program:expr, $label:expr) => {{
                let (a, _) = executor_chain(&g, $program, &cfg).unwrap();
                let (b, _) = sim_chain(&g, $program, &cfg, LatencyModel::Fixed(1)).unwrap();
                assert_eq!(a.chain(), b.chain(), "{name}/{}", $label);
                assert_eq!(a.head(), b.head(), "{name}/{}", $label);
            }};
        }
        check!(&bfs, "bfs");
        check!(&cv, "cole-vishkin");
        check!(&voronoi, "voronoi");
    }
}

/// The reliable-delivery adapter's drained event journal reconciles exactly
/// with its aggregate statistics: summed retransmit counts equal
/// `stats.retransmitted` and excuse events equal `stats.excused` — and
/// turning tracing on does not change the protocol (inner states match the
/// untraced wrapped run).
#[test]
fn reliable_trace_reconciles_with_stats_and_does_not_perturb() {
    type P = TreeGatherProgram;
    let g = generators::triangulated_grid(8, 8);
    let leader = acceptance_leader(&g);
    let program = TreeGatherProgram::new(&g, leader);
    let model = FaultModel::iid_loss(0.2);
    let sim = Simulator::new(SimConfig::default());

    let untraced = sim
        .run_with_faults(&g, &Reliable::new(program.clone()), &model)
        .unwrap();
    let traced = sim
        .run_with_faults(&g, &Reliable::new(program).with_trace(), &model)
        .unwrap();
    assert_eq!(
        Reliable::<P>::inner_states_cloned(&untraced.run.states),
        Reliable::<P>::inner_states_cloned(&traced.run.states),
        "tracing perturbed the adapter protocol"
    );
    let stats = Reliable::<P>::stats(&traced.run.states);
    assert!(
        stats.retransmitted > 0,
        "20% loss caused no retransmissions"
    );

    let mut rec = RecordingSink::new();
    Reliable::<P>::drain_trace(&traced.run.states, &mut rec);
    let retransmitted: u64 = rec
        .of_kind("retransmit")
        .iter()
        .map(|e| match e {
            Event::Retransmit { count, .. } => *count,
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(retransmitted, stats.retransmitted);
    assert_eq!(rec.of_kind("excuse").len() as u64, stats.excused);

    // The journal is round-sorted: serialization order is deterministic.
    let rounds: Vec<u64> = rec
        .events
        .iter()
        .map(|e| match e {
            Event::Retransmit { round, .. }
            | Event::Excuse { round, .. }
            | Event::LinkClose { round, .. } => *round,
            _ => unreachable!(),
        })
        .collect();
    assert!(rounds.windows(2).all(|w| w[0] <= w[1]));

    // An untraced adapter journals nothing.
    let mut empty = RecordingSink::new();
    Reliable::<P>::drain_trace(&untraced.run.states, &mut empty);
    assert!(empty.events.is_empty());
}
