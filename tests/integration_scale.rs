//! Scale-layer acceptance: the streaming `mfd_graph::gen` generators and the
//! sharded CSR executor.
//!
//! Three properties are pinned here rather than in unit tests because they
//! span crates: (1) the streaming generators are pure functions of their
//! parameters that always emit *valid* CSR (sorted, deduplicated, symmetric,
//! loop-free) and agree with the adjacency-map construction path at small n;
//! (2) the sharded executor is bit-identical to the unsharded engine —
//! states, meters and digest chains — across shard and thread counts; and
//! (3) the `*_csr` entry points of `mfd-core` are a pure representation
//! boundary, returning exactly what their adjacency-map twins return.

use mfd_core::clustering::Clustering;
use mfd_core::edt::{build_edt, build_edt_csr, EdtConfig};
use mfd_core::programs::{run_bfs, run_bfs_csr, run_voronoi_ldd, run_voronoi_ldd_csr, BfsProgram};
use mfd_graph::{gen, generators, CsrGraph, Graph};
use mfd_routing::backend::Metered;
use mfd_runtime::{Executor, ExecutorConfig, ShardedConfig, ShardedExecutor};
use mfd_trace::DigestSink;
use proptest::prelude::*;

/// Structural validity of a CSR graph: monotone offsets, strictly ascending
/// neighbor rows (sorted + deduplicated), no self-loops, symmetry, and a
/// consistent edge count.
fn assert_valid_csr(g: &CsrGraph) {
    let offsets = g.offsets();
    assert_eq!(offsets.len(), g.n() + 1);
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    let mut degree_sum = 0usize;
    for v in 0..g.n() {
        let row = g.neighbors(v);
        degree_sum += row.len();
        assert!(
            row.windows(2).all(|w| w[0] < w[1]),
            "row {v} not strictly ascending"
        );
        for &u in row {
            assert!(u < g.n(), "neighbor {u} of {v} out of range");
            assert_ne!(u, v, "self-loop at {v}");
            assert!(
                g.neighbors(u).binary_search(&v).is_ok(),
                "edge {v}-{u} not symmetric"
            );
        }
    }
    assert_eq!(degree_sum, 2 * g.m());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming generators are pure functions of `(parameters, seed)` and
    /// always emit structurally valid CSR.
    #[test]
    fn streaming_generators_are_deterministic_and_valid(
        scale in 3u32..7,
        edge_factor in 1usize..5,
        nexp in 4u32..9,
        alpha in 15u32..30,
        seed in 0u64..1000,
    ) {
        let alpha = alpha as f64 / 10.0;
        let n = 1usize << nexp;
        for g in [
            gen::rmat(scale, edge_factor, seed),
            gen::power_law(n, edge_factor * n, alpha, seed),
            gen::mesh(1 + (seed as usize % 7), 1 + (edge_factor * 3)),
        ] {
            assert_valid_csr(&g);
        }
        prop_assert_eq!(
            gen::rmat(scale, edge_factor, seed),
            gen::rmat(scale, edge_factor, seed)
        );
        prop_assert_eq!(
            gen::power_law(n, edge_factor * n, alpha, seed),
            gen::power_law(n, edge_factor * n, alpha, seed)
        );
    }

    /// At small n the streaming emitters agree with the adjacency-map
    /// construction path: rebuilding the emitted edge list through `Graph`
    /// (whose `add_edge` deduplicates one insert at a time) and converting
    /// back yields the identical CSR — both paths drop the same self-loops
    /// and duplicates.
    #[test]
    fn streaming_generators_match_the_adjacency_map_path(
        scale in 3u32..6,
        edge_factor in 1usize..4,
        seed in 0u64..1000,
    ) {
        for g in [
            gen::rmat(scale, edge_factor, seed),
            gen::power_law(1 << scale, edge_factor << scale, 2.5, seed),
        ] {
            let mut adjacency = Graph::new(g.n());
            for (u, v) in g.edges() {
                adjacency.add_edge(u, v);
            }
            prop_assert_eq!(CsrGraph::from_graph(&adjacency), g.clone());
            prop_assert_eq!(CsrGraph::from_graph(&g.to_graph()), g);
        }
    }

    /// The sharded executor is bit-identical to the unsharded engine on
    /// arbitrary graphs, whatever the shard count.
    #[test]
    fn sharded_executor_matches_unsharded_on_random_graphs(
        n in 2usize..40,
        extra in 0usize..40,
        seed in 0u64..1000,
        shards in 1usize..9,
    ) {
        let g = generators::random_gnm(n, n + extra, seed);
        let reference = Executor::new(ExecutorConfig::default())
            .run(&g, &BfsProgram { root: 0 })
            .unwrap();
        let run = ShardedExecutor::new(ShardedConfig::with_shards_threads(shards, 2))
            .run(&CsrGraph::from_graph(&g), &BfsProgram { root: 0 })
            .unwrap();
        prop_assert_eq!(run.states, reference.states);
        prop_assert_eq!(run.rounds, reference.rounds);
        prop_assert_eq!(run.messages, reference.messages);
        prop_assert_eq!(run.meter.max_words_on_edge(), reference.meter.max_words_on_edge());
    }
}

/// The mesh family, pinned against a hand-built adjacency construction.
#[test]
fn mesh_generator_matches_a_hand_built_grid() {
    let (rows, cols) = (5, 7);
    let mut manual = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                manual.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                manual.add_edge(v, v + cols);
            }
            if c + 1 < cols && r + 1 < rows {
                manual.add_edge(v, v + cols + 1); // the triangulating diagonal
            }
        }
    }
    assert_eq!(gen::mesh(rows, cols), CsrGraph::from_graph(&manual));
}

/// Digest chains — not just final states — agree between engines and across
/// shard and thread counts on a generated power-law graph.
#[test]
fn digest_chains_are_shard_and_thread_invariant() {
    let csr = gen::power_law(256, 1024, 2.5, 0xC5A1E);
    let g = csr.to_graph();
    let program = BfsProgram { root: 0 };

    let mut reference = DigestSink::new();
    let expected = Executor::new(ExecutorConfig::default())
        .run_traced(&g, &program, &mut reference)
        .unwrap();

    for shards in [1, 3, 16, 256] {
        for threads in [1, 3] {
            let mut sink = DigestSink::new();
            let run = ShardedExecutor::new(ShardedConfig::with_shards_threads(shards, threads))
                .run_traced(&csr, &program, &mut sink)
                .unwrap();
            assert_eq!(
                run.states, expected.states,
                "shards={shards} threads={threads}"
            );
            assert_eq!(
                sink.heads(),
                reference.heads(),
                "shards={shards} threads={threads}"
            );
        }
    }
}

/// The `*_csr` entry points are a pure representation boundary: identical
/// results and identical meters to their adjacency-map twins.
#[test]
fn csr_entry_points_match_their_adjacency_map_twins() {
    let executor = Executor::new(ExecutorConfig::default());
    let sharded = ShardedExecutor::new(ShardedConfig::default());
    for g in [
        generators::triangulated_grid(9, 6),
        generators::wheel(48),
        gen::rmat(6, 3, 7).to_graph(),
    ] {
        let csr = CsrGraph::from_graph(&g);

        let (bfs, meter) = run_bfs(&g, 0, &executor).unwrap();
        let (bfs_csr, meter_csr) = run_bfs_csr(&csr, 0, &sharded).unwrap();
        assert_eq!(bfs_csr.parent, bfs.parent);
        assert_eq!(bfs_csr.depth, bfs.depth);
        assert_eq!(bfs_csr.height, bfs.height);
        assert_eq!(meter_csr.rounds(), meter.rounds());
        assert_eq!(meter_csr.messages(), meter.messages());

        let centers = [0, g.n() / 3, g.n() - 1];
        let (clustering, lmeter) = run_voronoi_ldd(&g, &centers, &executor).unwrap();
        let (labels, lmeter_csr) = run_voronoi_ldd_csr(&csr, &centers, &sharded).unwrap();
        // `run_voronoi_ldd` canonicalizes labels through `Clustering`;
        // materializing the raw CSR labels the same way must coincide.
        assert_eq!(Clustering::from_labels(&g, labels), clustering);
        assert_eq!(lmeter_csr.rounds(), lmeter.rounds());
        assert_eq!(lmeter_csr.messages(), lmeter.messages());

        let (edt, emeter) = build_edt(&g, &EdtConfig::new(0.3));
        let (edt_csr, emeter_csr) = build_edt_csr(&csr, &EdtConfig::new(0.3), &Metered);
        assert_eq!(edt_csr.clustering, edt.clustering);
        assert_eq!(edt_csr.epsilon_achieved, edt.epsilon_achieved);
        assert_eq!(emeter_csr.rounds(), emeter.rounds());
        assert_eq!(emeter_csr.messages(), emeter.messages());
    }
}
