//! Cross-crate integration tests for the applications of §6: approximation quality
//! and validity of MIS / matching / vertex cover / max cut, and correctness of the
//! property tester, on the paper's graph families.

use mfd_apps::matching::{approximate_maximum_matching, MatchingConfig};
use mfd_apps::max_cut::{approximate_max_cut, MaxCutConfig};
use mfd_apps::mis::{approximate_mis, MisConfig};
use mfd_apps::property_testing::{test_property, Forests, Planarity, RejectReason};
use mfd_apps::solvers;
use mfd_apps::vertex_cover::{approximate_vertex_cover, VertexCoverConfig};
use mfd_graph::generators;

#[test]
fn all_applications_produce_valid_outputs_on_one_planar_network() {
    let g = generators::random_apollonian(180, 13);
    let eps = 0.3;

    let mis = approximate_mis(&g, &MisConfig::new(eps));
    assert!(solvers::is_independent_set(&g, &mis.independent_set));

    let matching = approximate_maximum_matching(&g, &MatchingConfig::new(eps));
    assert!(solvers::is_matching(&g, &matching.matching));

    let cover = approximate_vertex_cover(&g, &VertexCoverConfig::new(eps));
    assert!(solvers::is_vertex_cover(&g, &cover.cover));

    let cut = approximate_max_cut(&g, &MaxCutConfig::new(eps));
    assert!(cut.cut_edges * 2 >= g.m());

    // Complementarity sanity: MIS + VC roughly partition the vertex set.
    assert!(mis.independent_set.len() + cover.cover.len() >= g.n() * 9 / 10);
}

#[test]
fn mis_quality_against_exact_optimum_on_a_small_planar_graph() {
    let g = generators::triangulated_grid(6, 6);
    let exact = solvers::maximum_independent_set(&g, 2_000_000)
        .vertices
        .len();
    let approx = approximate_mis(&g, &MisConfig::new(0.2))
        .independent_set
        .len();
    assert!(
        approx as f64 >= (1.0 - 0.3) * exact as f64,
        "approx {approx} exact {exact}"
    );
}

#[test]
fn matching_quality_against_blossom_optimum() {
    let g = generators::triangulated_grid(9, 9);
    let opt = solvers::matching_edges(&solvers::maximum_matching(&g)).len();
    let approx = approximate_maximum_matching(&g, &MatchingConfig::new(0.2))
        .matching
        .len();
    assert!(
        approx as f64 >= (1.0 - 0.4) * opt as f64,
        "approx {approx} opt {opt}"
    );
}

#[test]
fn max_cut_on_bipartite_planar_graphs_is_nearly_perfect() {
    let g = generators::grid(12, 12);
    let r = approximate_max_cut(&g, &MaxCutConfig::new(0.2));
    assert!(r.cut_edges as f64 >= 0.8 * g.m() as f64);
}

#[test]
fn property_tester_accepts_planar_and_rejects_far_instances() {
    let planar = generators::random_apollonian(250, 2);
    assert!(test_property(&planar, &Planarity, 0.2).accepted);

    let base = generators::random_apollonian(150, 6);
    let far = generators::with_random_chords(&base, base.m() / 2, 3);
    assert!(!test_property(&far, &Planarity, 0.2).accepted);

    let dense = generators::complete(40);
    let outcome = test_property(&dense, &Planarity, 0.2);
    assert!(!outcome.accepted);
    assert_eq!(
        outcome.reason,
        Some(RejectReason::ArboricityCertificateFailed)
    );
}

#[test]
fn property_tester_on_disjoint_unions_uses_additivity() {
    // Additivity: a disjoint union of planar graphs is planar and must be accepted.
    let g = generators::triangulated_grid(8, 8)
        .disjoint_union(&generators::random_apollonian(80, 4))
        .disjoint_union(&generators::random_tree(60, 5));
    assert!(test_property(&g, &Planarity, 0.25).accepted);
    // A forest union is accepted by the forest tester, adding one dense component
    // flips it.
    let forest = generators::random_tree(100, 1).disjoint_union(&generators::random_tree(80, 2));
    assert!(test_property(&forest, &Forests, 0.25).accepted);
    let spoiled = forest.disjoint_union(&generators::triangulated_grid(10, 10));
    assert!(!test_property(&spoiled, &Forests, 0.25).accepted);
}

#[test]
fn approximation_rounds_do_not_explode_with_size() {
    let small = generators::triangulated_grid(8, 8);
    let large = generators::triangulated_grid(16, 16);
    let rs = approximate_max_cut(&small, &MaxCutConfig::new(0.3))
        .rounds
        .max(1);
    let rl = approximate_max_cut(&large, &MaxCutConfig::new(0.3)).rounds;
    let n_ratio = (large.n() as f64) / (small.n() as f64);
    assert!(
        (rl as f64) < n_ratio * (rs as f64) * 2.0,
        "rounds grew too fast: {rs} -> {rl}"
    );
}
