//! Cross-crate integration tests for the decomposition pipeline: graph generators →
//! CONGEST metering → routing → (ε, D, T)-decomposition, exercised end to end on the
//! graph families the paper's theorems quantify over.

use mfd_congest::RoundMeter;
use mfd_core::edt::{build_edt, build_edt_with, EdtConfig};
use mfd_core::expander::{
    min_cluster_conductance, minor_free_expander_decomposition, ExpanderParams,
};
use mfd_core::ldd::{chop_ldd, measure_ldd};
use mfd_core::overlap::{overlap_expander_decomposition, OverlapParams};
use mfd_graph::{generators, planarity, Graph};
use mfd_routing::backend::Executed;
use mfd_routing::gather::GatherStrategy;
use mfd_routing::walks::WalkParams;
use mfd_sim::SimConfig;
use proptest::prelude::*;

fn planar_instances() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "triangulated-grid-12x12",
            generators::triangulated_grid(12, 12),
        ),
        ("apollonian-300", generators::random_apollonian(300, 17)),
        ("grid-15x15", generators::grid(15, 15)),
        ("wheel-120", generators::wheel(120)),
        ("outerplanar-150", generators::random_outerplanar(150, 9)),
        ("k-tree-2-200", generators::k_tree(200, 2, 21)),
        ("random-tree-250", generators::random_tree(250, 33)),
    ]
}

#[test]
fn generators_produce_minor_free_graphs() {
    for (name, g) in planar_instances() {
        assert!(g.is_connected(), "{name} must be connected");
        if !name.starts_with("k-tree") {
            assert!(planarity::is_planar(&g), "{name} must be planar");
        }
        assert!(
            mfd_graph::properties::degeneracy(&g) <= 5,
            "{name} must have planar-grade degeneracy"
        );
    }
}

#[test]
fn edt_is_valid_on_every_planar_instance() {
    for (name, g) in planar_instances() {
        for epsilon in [0.4, 0.2] {
            let (d, meter) = build_edt(&g, &EdtConfig::new(epsilon));
            assert!(
                d.is_valid(&g),
                "{name} eps {epsilon}: invalid decomposition"
            );
            assert!(
                d.epsilon_achieved <= epsilon + 1e-9,
                "{name} eps {epsilon}: fraction {}",
                d.epsilon_achieved
            );
            assert!(
                d.clustering.all_clusters_connected(&g),
                "{name}: disconnected cluster"
            );
            assert!(meter.rounds() > 0, "{name}: no rounds charged");
            assert!(
                (d.min_delivered_fraction - 1.0).abs() < 1e-9,
                "{name}: tree routing must deliver everything"
            );
        }
    }
}

#[test]
fn edt_diameter_tracks_one_over_epsilon_on_large_thin_graphs() {
    // A long path has huge diameter, so the decomposition must actually cut it into
    // O(1/ε)-diameter pieces.
    let g = generators::path(2000);
    for epsilon in [0.4, 0.2, 0.1] {
        let config = EdtConfig::new(epsilon);
        let (d, _) = build_edt(&g, &config);
        assert!(d.epsilon_achieved <= epsilon + 1e-9);
        assert!(
            d.diameter <= config.diameter_target(),
            "eps {epsilon}: diameter {} exceeds target {}",
            d.diameter,
            config.diameter_target()
        );
    }
}

#[test]
fn edt_with_walk_schedule_routing_still_validates() {
    let g = generators::triangulated_grid(9, 9);
    let config = EdtConfig::new(0.3)
        .with_routing_gather(GatherStrategy::WalkSchedule(WalkParams::default()));
    let (d, meter) = build_edt(&g, &config);
    assert!(d.epsilon_achieved <= 0.3 + 1e-9);
    assert!(d.routing_rounds > 0);
    assert!(meter.rounds() >= d.routing_rounds);
    // Grid clusters are not expanders, so the walk gatherer legitimately delivers
    // only part of the messages in one execution (the paper's guarantee assumes
    // φ-expander clusters); it must still deliver a solid majority.
    assert!(
        d.min_delivered_fraction >= 0.5,
        "delivered {}",
        d.min_delivered_fraction
    );
}

#[test]
fn ldd_and_overlap_and_expander_decompositions_compose() {
    let g = generators::random_apollonian(250, 8);
    // Corollary 6.1-style LDD.
    let ldd = chop_ldd(&g, 0.25, 3);
    let q = measure_ldd(&g, &ldd);
    assert!(q.edge_fraction <= 0.25 + 1e-9);
    assert!(q.max_diameter < usize::MAX);

    // §4 overlap decomposition.
    let mut meter = RoundMeter::new();
    let overlap = overlap_expander_decomposition(&g, 0.35, &OverlapParams::default(), &mut meter);
    assert!(overlap.edge_fraction <= 0.35 + 1e-9);
    assert!(overlap.check_invariants(&g));

    // Observation 3.1 expander decomposition.
    let exp = minor_free_expander_decomposition(&g, 0.5, &ExpanderParams::default());
    assert!(exp.clustering.all_clusters_connected(&g));
    let phi = min_cluster_conductance(&g, &exp.clustering, 60);
    assert!(phi > 0.0);
}

/// The executed-decomposition acceptance families: every `build_edt` claim
/// about the `Executed` backend is pinned on these (mirrors the executed
/// gather layer's acceptance set).
fn edt_acceptance_families() -> Vec<(&'static str, Graph, f64)> {
    mfd_bench::edt_acceptance_families()
}

/// Acceptance criterion of the executed construction: on every acceptance
/// family the `Executed` backend yields the *same decomposition* as the
/// `Metered` one, valid, with every executed round inside the metered
/// charge — construction and routing separately.
#[test]
fn executed_decomposition_within_metered_charge_on_acceptance_families() {
    for (name, g, eps) in edt_acceptance_families() {
        let config = EdtConfig::new(eps);
        let (metered, charged) = build_edt(&g, &config);
        let (executed, spent) = build_edt_with(&g, &config, &Executed::default());
        assert!(
            executed.is_valid(&g),
            "{name}: executed decomposition invalid"
        );
        assert_eq!(
            metered.clustering, executed.clustering,
            "{name}: backends disagree on the partition"
        );
        assert_eq!(metered.leaders, executed.leaders, "{name}");
        assert!(
            spent.rounds() <= charged.rounds(),
            "{name}: executed {} rounds exceed the metered {}",
            spent.rounds(),
            charged.rounds()
        );
        assert!(
            executed.construction_rounds <= metered.construction_rounds,
            "{name}: construction executed {} > charged {}",
            executed.construction_rounds,
            metered.construction_rounds
        );
        assert!(
            executed.routing_rounds <= metered.routing_rounds,
            "{name}: routing executed {} > charged {}",
            executed.routing_rounds,
            metered.routing_rounds
        );
        assert!(executed.routing_rounds > 0, "{name}");
    }
}

/// The full construction is engine-invariant: running the `Executed` backend
/// on the synchronous executor and on the `Fixed(1)` event simulation gives
/// bit-identical decompositions and bit-identical accounting.
#[test]
fn executed_decomposition_is_bit_identical_across_engines() {
    for (name, g, eps) in edt_acceptance_families() {
        let config = EdtConfig::new(eps);
        let (sync, sync_meter) = build_edt_with(&g, &config, &Executed::default());
        let (sim, sim_meter) = build_edt_with(&g, &config, &Executed::sim(SimConfig::default()));
        assert_eq!(sync.clustering, sim.clustering, "{name}");
        assert_eq!(sync.leaders, sim.leaders, "{name}");
        assert_eq!(sync.construction_rounds, sim.construction_rounds, "{name}");
        assert_eq!(sync.routing_rounds, sim.routing_rounds, "{name}");
        assert_eq!(
            sync.min_delivered_fraction, sim.min_delivered_fraction,
            "{name}"
        );
        assert_eq!(sync.routing_strategy, sim.routing_strategy, "{name}");
        assert_eq!(sync_meter.rounds(), sim_meter.rounds(), "{name}");
        assert_eq!(sync_meter.messages(), sim_meter.messages(), "{name}");
        assert_eq!(
            sync_meter.max_words_on_edge(),
            sim_meter.max_words_on_edge(),
            "{name}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random apollonian clusters: the executed backend's decomposition is
    /// valid, equals the metered backend's partition (the clustering
    /// decisions are deterministic and backend-independent), and spends no
    /// more rounds than the metered path charges.
    #[test]
    fn executed_edt_matches_metered_on_random_apollonians(
        n in 24usize..120,
        seed in 0u64..300,
        eps_idx in 0usize..3,
    ) {
        let g = generators::random_apollonian(n, seed);
        let config = EdtConfig::new([0.2, 0.3, 0.4][eps_idx]);
        let (metered, charged) = build_edt(&g, &config);
        let (executed, spent) = build_edt_with(&g, &config, &Executed::default());
        prop_assert!(executed.is_valid(&g));
        prop_assert_eq!(metered.clustering, executed.clustering);
        prop_assert_eq!(metered.leaders, executed.leaders);
        prop_assert_eq!(metered.iterations, executed.iterations);
        prop_assert!(spent.rounds() <= charged.rounds(),
            "executed {} > charged {}", spent.rounds(), charged.rounds());
    }

    /// Random grid clusters, the low-conductance regime where strategy
    /// selection and the tree pipeline carry the weight.
    #[test]
    fn executed_edt_matches_metered_on_random_grids(
        rows in 4usize..10,
        cols in 4usize..10,
        triangulated in 0usize..2,
    ) {
        let g = if triangulated == 1 {
            generators::triangulated_grid(rows, cols)
        } else {
            generators::grid(rows, cols)
        };
        let config = EdtConfig::new(0.3);
        let (metered, charged) = build_edt(&g, &config);
        let (executed, spent) = build_edt_with(&g, &config, &Executed::default());
        prop_assert!(executed.is_valid(&g));
        prop_assert_eq!(metered.clustering, executed.clustering);
        prop_assert!(spent.rounds() <= charged.rounds(),
            "executed {} > charged {}", spent.rounds(), charged.rounds());
    }
}

#[test]
fn construction_rounds_scale_mildly_in_n_for_fixed_epsilon() {
    // Theorem 1.1: for fixed ε and bounded degree the construction time is
    // O(log* n / ε) + poly(1/ε) — in particular it grows far slower than n.
    let sizes = [10usize, 20, 30];
    let mut rounds = Vec::new();
    for &s in &sizes {
        let g = generators::triangulated_grid(s, s);
        let (d, _) = build_edt(&g, &EdtConfig::new(0.3));
        rounds.push(d.construction_rounds.max(1));
    }
    let n_ratio = (sizes[2] * sizes[2]) as f64 / (sizes[0] * sizes[0]) as f64; // 9x
    let r_ratio = rounds[2] as f64 / rounds[0] as f64;
    assert!(
        r_ratio < n_ratio,
        "construction rounds grew faster than n: {rounds:?}"
    );
}
