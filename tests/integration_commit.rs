//! Parallel-commit acceptance: the restructured commit phase — per-vertex
//! digests computed inside the parallel sweep, full-vector folds deferred
//! and batched by the sink — must be *invisible* in every observable value.
//!
//! Four properties are pinned here, deliberately at and above the sink's
//! deferral threshold (`DEFERRED_MIN_VERTICES` = 16384) so the batched fold
//! path actually engages, not just the small-run eager path:
//!
//! 1. Sharded runs are bit-identical to the unsharded engine — states,
//!    rounds, messages, meters, arena high-water marks, and chained digest
//!    heads — whatever the shard and thread counts.
//! 2. The deferred sink (`DigestSink::new`) and the eager snapshot-keeping
//!    sink (`DigestSink::with_snapshots`) fold to the same chain on real
//!    engine runs.
//! 3. A run killed at a checkpoint and resumed crosses the deferral
//!    boundary bit-identically: same final states, same chain head.
//! 4. `Reliable<P>` under i.i.d. loss keeps a deterministic, sink-mode-
//!    independent digest chain (the ARQ wrapper's states flow through the
//!    same commit path as everything else).

use mfd_bench::trace::DivergenceProbe;
use mfd_core::programs::BfsProgram;
use mfd_faults::{FaultModel, Reliable};
use mfd_graph::{gen, generators};
use mfd_runtime::{Executor, ExecutorConfig, ShardedConfig, ShardedExecutor};
use mfd_sim::{LatencyModel, SimConfig, Simulator};
use mfd_trace::DigestSink;
use proptest::prelude::*;

/// A power-law graph big enough that every round-0 digest batch (all `n`
/// vertices) crosses `DEFERRED_MIN_VERTICES` = 16384, and BFS floods the
/// giant component in a handful of rounds — the test pays for folds, not
/// for diameter.
fn deferral_scale_graph() -> mfd_graph::CsrGraph {
    gen::power_law(17_000, 51_000, 2.5, 0xC0117)
}

/// Sharded runs at and above the deferral threshold are bit-identical to
/// the unsharded engine across shard and thread counts: states, round and
/// message accounting, meters, arena high-water marks, and the chained
/// digest heads all agree.
#[test]
fn deferral_scale_runs_are_identical_across_threads_and_shards() {
    let csr = deferral_scale_graph();
    let g = csr.to_graph();
    let program = BfsProgram { root: 0 };

    let mut reference = DigestSink::new();
    let expected = Executor::new(ExecutorConfig::default())
        .run_traced(&g, &program, &mut reference)
        .unwrap();

    let mut arena_at_shards = std::collections::BTreeMap::new();
    for shards in [1usize, 7, 64] {
        for threads in [1usize, 4] {
            let mut sink = DigestSink::new();
            let run = ShardedExecutor::new(ShardedConfig::with_shards_threads(shards, threads))
                .run_traced(&csr, &program, &mut sink)
                .unwrap();
            assert_eq!(
                run.states, expected.states,
                "states: shards={shards} threads={threads}"
            );
            assert_eq!(run.rounds, expected.rounds, "shards={shards}");
            assert_eq!(run.messages, expected.messages, "shards={shards}");
            assert_eq!(
                run.meter.max_words_on_edge(),
                expected.meter.max_words_on_edge(),
                "meter: shards={shards} threads={threads}"
            );
            assert_eq!(
                sink.heads(),
                reference.heads(),
                "digest chain: shards={shards} threads={threads}"
            );
            // Arena high-water marks are a function of the shard layout,
            // never of the thread count.
            if let Some(prev) = arena_at_shards.insert(shards, run.arena) {
                assert_eq!(
                    prev, run.arena,
                    "arena HWMs vary by threads at shards={shards}"
                );
            }
        }
    }
}

/// The deferred batched fold and the eager snapshot fold produce the same
/// chain on real engine runs — unsharded and sharded — at a scale where
/// deferral actually engages.
#[test]
fn deferred_and_eager_sinks_fold_the_same_chain_on_engine_runs() {
    let csr = deferral_scale_graph();
    let g = csr.to_graph();
    let program = BfsProgram { root: 0 };

    let mut deferred = DigestSink::new();
    Executor::new(ExecutorConfig::default())
        .run_traced(&g, &program, &mut deferred)
        .unwrap();
    let mut eager = DigestSink::with_snapshots();
    Executor::new(ExecutorConfig::default())
        .run_traced(&g, &program, &mut eager)
        .unwrap();
    assert_eq!(deferred.heads(), eager.heads(), "unsharded");
    assert_eq!(deferred.head(), eager.head(), "unsharded head");

    let mut deferred = DigestSink::new();
    ShardedExecutor::new(ShardedConfig::with_shards_threads(16, 4))
        .run_traced(&csr, &program, &mut deferred)
        .unwrap();
    let mut eager = DigestSink::with_snapshots();
    ShardedExecutor::new(ShardedConfig::with_shards_threads(16, 4))
        .run_traced(&csr, &program, &mut eager)
        .unwrap();
    assert_eq!(deferred.heads(), eager.heads(), "sharded");
}

/// Kill-and-resume crosses the deferral boundary bit-identically: every
/// checkpoint of a deferral-scale run resumes to the uninterrupted run's
/// final states and chain head under the parallel-commit path.
#[test]
fn resumed_runs_cross_the_deferral_boundary_bit_identically() {
    let csr = deferral_scale_graph();
    let g = csr.to_graph();
    let program = BfsProgram { root: 0 };
    let exec = Executor::new(ExecutorConfig::default());

    let mut sink = DigestSink::new();
    let mut cps = Vec::new();
    let full = exec
        .run_checkpointed(&g, &program, &mut sink, 2, &mut |cp, s: &DigestSink| {
            cps.push((cp, s.export()));
        })
        .unwrap();
    assert!(!cps.is_empty(), "the run must be long enough to checkpoint");

    for (cp, digests) in cps {
        let round = cp.round;
        let mut rsink = DigestSink::restore(digests);
        let resumed = exec.resume_traced(&g, &program, cp, &mut rsink).unwrap();
        assert_eq!(resumed.states, full.states, "@{round}");
        assert_eq!(resumed.rounds, full.rounds, "@{round}");
        assert_eq!(resumed.messages, full.messages, "@{round}");
        assert_eq!(rsink.chain(), sink.chain(), "@{round}");
        assert_eq!(rsink.head(), sink.head(), "@{round}");
    }
}

/// `Reliable<P>` under i.i.d. loss journals a deterministic digest chain
/// through the restructured commit path: two identical faulted runs chain
/// identically, and the eager snapshot sink agrees with the default sink
/// on the faulted configuration.
#[test]
fn reliable_under_loss_chains_deterministically() {
    let g = generators::wheel(64);
    let program = Reliable::new(DivergenceProbe::clean(12));
    let model = FaultModel::iid_loss(0.25);
    let sim = Simulator::new(SimConfig::matching(
        &ExecutorConfig::default(),
        LatencyModel::Uniform { lo: 1, hi: 3 },
    ));

    let mut a = DigestSink::new();
    let ra = sim
        .run_with_faults_traced(&g, &program, &model, &mut a)
        .unwrap();
    let mut b = DigestSink::new();
    let rb = sim
        .run_with_faults_traced(&g, &program, &model, &mut b)
        .unwrap();
    assert_eq!(a.chain(), b.chain(), "faulted chain is not run-invariant");
    assert_eq!(
        Reliable::<DivergenceProbe>::inner_states_cloned(&ra.run.states),
        Reliable::<DivergenceProbe>::inner_states_cloned(&rb.run.states),
    );

    let mut eager = DigestSink::with_snapshots();
    sim.run_with_faults_traced(&g, &program, &model, &mut eager)
        .unwrap();
    assert_eq!(a.chain(), eager.chain(), "sink mode changed the chain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On arbitrary small graphs the parallel-commit sharded engine agrees
    /// with the unsharded reference in every observable — and its arena
    /// high-water marks are thread-invariant at a fixed shard count.
    #[test]
    fn parallel_commit_is_invariant_on_random_graphs(
        n in 2usize..48,
        extra in 0usize..48,
        seed in 0u64..1000,
        shards in 1usize..9,
    ) {
        let g = generators::random_gnm(n, n + extra, seed);
        let csr = mfd_graph::CsrGraph::from_graph(&g);
        let program = BfsProgram { root: 0 };

        let mut reference = DigestSink::new();
        let expected = Executor::new(ExecutorConfig::default())
            .run_traced(&g, &program, &mut reference)
            .unwrap();

        let mut arena = None;
        for threads in [1usize, 3] {
            let mut sink = DigestSink::new();
            let run = ShardedExecutor::new(ShardedConfig::with_shards_threads(shards, threads))
                .run_traced(&csr, &program, &mut sink)
                .unwrap();
            prop_assert_eq!(&run.states, &expected.states);
            prop_assert_eq!(run.rounds, expected.rounds);
            prop_assert_eq!(run.messages, expected.messages);
            prop_assert_eq!(
                run.meter.max_words_on_edge(),
                expected.meter.max_words_on_edge()
            );
            prop_assert_eq!(sink.heads(), reference.heads());
            if let Some(prev) = arena.replace(run.arena) {
                prop_assert_eq!(prev, run.arena);
            }
        }
    }
}
