//! Profiler-layer acceptance: the `mfd-prof` overlay is perturbation-free.
//!
//! The tentpole property spans three crates (runtime hooks, the `Profile`
//! recorder, the bench harness), so it lives here: running a workload with
//! the profiler attached must be **bit-identical** to running it without —
//! final states, meter statistics, arena high-water marks, and the chained
//! per-round digests — across shard counts, thread counts, and both
//! engines. The profiler only ever writes into its own sample buffer at
//! points that are already sequential, so the property should hold by
//! construction; this suite is the regression net under it.

use mfd_core::programs::{BfsProgram, VoronoiLddProgram};
use mfd_graph::{gen, generators};
use mfd_prof::Profile;
use mfd_runtime::profile::{PHASE_EXCHANGE, PHASE_ROUTE};
use mfd_runtime::{Executor, ExecutorConfig, ShardedConfig, ShardedExecutor};
use mfd_trace::DigestSink;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Profiled ≡ unprofiled on the sharded engine, across shard and
    /// thread counts: states, meter, arena HWMs and digest chains.
    #[test]
    fn profiled_sharded_runs_are_bit_identical(
        rows in 3usize..9,
        cols in 3usize..9,
        shards in 1usize..9,
        threads in 1usize..5,
        centers in 1usize..5,
    ) {
        let csr = gen::mesh(rows, cols);
        let centers: Vec<usize> = (0..centers).map(|i| (i * csr.n()) / centers).collect();
        let ldd = VoronoiLddProgram::new(csr.n(), &centers);
        let exec = ShardedExecutor::new(ShardedConfig::with_shards_threads(shards, threads));

        let mut profile = Profile::new();
        let mut sink = DigestSink::new();
        let profiled = exec
            .run_profiled(&csr, &ldd, &mut sink, &mut profile)
            .expect("ldd is model-compliant");

        let mut plain_sink = DigestSink::new();
        let plain = exec
            .run_traced(&csr, &ldd, &mut plain_sink)
            .expect("ldd is model-compliant");

        prop_assert_eq!(&profiled.states, &plain.states);
        prop_assert_eq!(profiled.rounds, plain.rounds);
        prop_assert_eq!(profiled.messages, plain.messages);
        prop_assert_eq!(
            profiled.meter.max_words_on_edge(),
            plain.meter.max_words_on_edge()
        );
        prop_assert_eq!(profiled.arena, plain.arena);
        prop_assert_eq!(sink.heads(), plain_sink.heads());

        // The profile itself is structurally coherent: one sample per
        // executed round, per-shard vectors sized to the shard count, and
        // message accounting that matches the run exactly.
        prop_assert_eq!(profile.round_count(), profiled.rounds);
        prop_assert_eq!(profile.messages(), profiled.messages);
        prop_assert_eq!(profile.shards, shards);
        for sample in &profile.rounds {
            prop_assert_eq!(sample.frontier.len(), profile.shards);
            prop_assert_eq!(sample.traffic.len(), profile.shards * profile.shards);
        }
    }

    /// Profiled ≡ unprofiled on the unsharded engine, and the overlay maps
    /// it onto a single shard with no routing phases.
    #[test]
    fn profiled_executor_runs_are_bit_identical(
        side in 3usize..10,
        threads in 1usize..5,
        root in 0usize..9,
    ) {
        let g = generators::triangulated_grid(side, side);
        let bfs = BfsProgram { root: root % g.n() };
        let exec = Executor::new(ExecutorConfig::with_threads(threads));

        let mut profile = Profile::new();
        let mut sink = DigestSink::new();
        let profiled = exec
            .run_profiled(&g, &bfs, &mut sink, &mut profile)
            .expect("bfs is model-compliant");

        let mut plain_sink = DigestSink::new();
        let plain = exec
            .run_traced(&g, &bfs, &mut plain_sink)
            .expect("bfs is model-compliant");

        prop_assert_eq!(&profiled.states, &plain.states);
        prop_assert_eq!(profiled.rounds, plain.rounds);
        prop_assert_eq!(profiled.messages, plain.messages);
        prop_assert_eq!(sink.heads(), plain_sink.heads());

        prop_assert_eq!(profile.shards, 1);
        prop_assert_eq!(profile.round_count(), profiled.rounds);
        prop_assert_eq!(profile.messages(), profiled.messages);
        // No router on the unsharded engine: route/exchange never tick.
        let walls = profile.phase_wall_totals();
        prop_assert_eq!(walls[PHASE_ROUTE], 0);
        prop_assert_eq!(walls[PHASE_EXCHANGE], 0);
    }
}

/// The deterministic parts of two profiles of the same run are identical —
/// frontier sizes, send/receive counts, and the full traffic matrix — even
/// though the wall clocks differ.
#[test]
fn deterministic_profile_columns_are_run_invariant() {
    let csr = gen::mesh(20, 20);
    let centers: Vec<usize> = (0..8).map(|i| (i * csr.n()) / 8).collect();
    let ldd = VoronoiLddProgram::new(csr.n(), &centers);
    let exec = ShardedExecutor::new(ShardedConfig::with_shards_threads(6, 2));

    let run_once = || {
        let mut profile = Profile::new();
        let mut sink = DigestSink::new();
        exec.run_profiled(&csr, &ldd, &mut sink, &mut profile)
            .expect("ldd is model-compliant");
        profile
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.round_count(), b.round_count());
    assert_eq!(a.traffic_totals(), b.traffic_totals());
    assert_eq!(a.frontier_totals(), b.frontier_totals());
    assert_eq!(a.sent_totals(), b.sent_totals());
    assert_eq!(a.delivered_totals(), b.delivered_totals());
    assert_eq!(a.arena_series(), b.arena_series());
}
